"""Parallel scenario-sweep runner with deterministic JSON result caching.

This module turns a declarative :class:`~repro.experiments.scenarios.ScenarioSpec`
into measurements:

1. **Grid expansion** -- :func:`expand_grid` takes ``{axis: [values...]}``
   and yields the cartesian product as a deterministic list of dicts (axes
   sorted by name, values in the given order).
2. **Cell execution** -- every grid point becomes one :class:`CellSpec`
   (device x job parameters).  :func:`run_cell` builds a fresh simulator and
   device, runs the FIO-style job, and returns a plain-``dict`` metrics
   payload (latency summary, throughput, optional throughput-over-time
   series).  Cells are fully independent, so they can run in worker
   processes.
3. **Caching** -- results are cached as one JSON file per cell under
   ``<cache_dir>/<scenario>/<hash>.json``.  The hash is a SHA-256 over the
   canonical JSON of the cell spec plus :data:`CACHE_VERSION`; bump the
   version when the device models change materially so stale caches
   invalidate themselves.
4. **Execution** -- :class:`SweepRunner` runs the missing cells serially or
   across worker processes (``concurrent.futures.ProcessPoolExecutor``).
   Because each cell seeds its own simulator from the spec, serial and
   parallel execution produce bit-identical metrics.

The paper figures (:mod:`repro.experiments.figure2` ...) are thin scenario
definitions executed through this runner; new characterization scenarios are
registered in :mod:`repro.experiments.scenarios`.
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
import itertools
import json
import math
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, replace
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

# Re-exported for backwards compatibility: the canonical-hash / seed
# helpers now live in repro.determinism so lower layers (cluster) share
# exactly one derivation scheme.
from repro.determinism import canonical_json, derive_seed, spec_hash  # noqa: F401

#: Manual override for cache invalidation.  Rarely needed now: cache keys
#: also include a fingerprint of the device-model source files (see
#: :func:`model_fingerprint`), so model changes auto-invalidate.
#: Version 3: per-stream seeds are hash-derived (no additive collisions),
#: which changes multi-stream cell results.
CACHE_VERSION = 3

#: Default cache directory (overridable per-runner or via the environment).
#: Snapshotted at import time; prefer :func:`default_cache_dir` so late
#: changes to ``$REPRO_SWEEP_CACHE`` are honored consistently.
DEFAULT_CACHE_DIR = os.environ.get("REPRO_SWEEP_CACHE", ".sweep-cache")


def default_cache_dir() -> str:
    """The sweep-cache directory: ``$REPRO_SWEEP_CACHE`` (read at call
    time, so every CLI verb sees the same environment) or
    ``.sweep-cache``."""
    return os.environ.get("REPRO_SWEEP_CACHE", ".sweep-cache")

#: Sub-packages of ``repro`` whose source defines simulation physics; their
#: contents make up the cache fingerprint.  Experiment/CLI modules are
#: deliberately excluded -- they orchestrate, they do not change results.
_MODEL_PACKAGES = ("sim", "host", "flash", "ssd", "ebs", "devices", "workload",
                   "metrics", "cluster")


@lru_cache(maxsize=1)
def model_fingerprint() -> str:
    """Digest of every device-model source file (auto cache invalidation).

    Any edit to the kernel, a device model, or the workload generators
    yields a new fingerprint, so previously cached sweep results stop
    matching without anyone remembering to bump :data:`CACHE_VERSION`.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for package in _MODEL_PACKAGES:
        package_dir = root / package
        if not package_dir.is_dir():
            continue
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------------------
# Grid expansion and hashing
# ---------------------------------------------------------------------------

def expand_grid(grid: Mapping[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """Cartesian product of ``{axis: values}`` as a deterministic list.

    Axes iterate in sorted-name order; values keep their given order.  An
    empty grid yields one empty point (a sweep of a single fixed cell).
    """
    if not grid:
        return [{}]
    axes = sorted(grid)
    for axis in axes:
        if not isinstance(grid[axis], (list, tuple)):
            raise TypeError(f"grid axis {axis!r} must be a list/tuple of values")
        if len(grid[axis]) == 0:
            raise ValueError(f"grid axis {axis!r} has no values")
    return [dict(zip(axes, combo))
            for combo in itertools.product(*(grid[axis] for axis in axes))]


# ---------------------------------------------------------------------------
# Cell specification and execution
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellSpec:
    """One independent simulation: a device plus a complete job description.

    All fields are JSON-serialisable so the spec itself is the cache key.
    """

    device: str                      # DeviceKind value ("SSD", "ESSD-1", ...)
    pattern: str = "randread"
    io_size: int = 4096
    queue_depth: int = 1
    write_ratio: Optional[float] = None
    io_count: Optional[int] = None
    total_bytes: Optional[int] = None
    runtime_us: Optional[float] = None
    ramp_ios: int = 0
    think_time_us: float = 0.0
    pattern_params: tuple = ()
    seed: int = 17
    preload: bool = True
    ssd_capacity_bytes: int = 256 * 1024 * 1024
    essd_capacity_bytes: int = 512 * 1024 * 1024
    #: Bin width for the throughput-over-time series ("auto" adapts to the
    #: run duration; None skips the series entirely).
    series_bin_us: Optional[float | str] = None
    #: Concurrent workload streams sharing this cell's simulation: a sorted
    #: tuple of ``(stream_name, overrides)`` pairs, each override a sorted
    #: tuple of (field, value) pairs.  Streams inherit the cell's job fields
    #: and may override any of them plus ``device`` -- several streams on
    #: one device model a noisy neighbor, streams on different devices a
    #: mixed fleet.  Empty = classic single-job cell.
    streams: tuple = ()
    #: Attach a request-path tracer and report the per-stage latency
    #: breakdown in the metrics (``metrics["trace"]``).
    trace: bool = False
    #: Device-profile overrides forwarded to ``create_device`` (e.g.
    #: ``replication_factor`` / ``chunk_size`` for the EBS cluster), as a
    #: sorted tuple of (field, value) pairs.
    device_params: tuple = ()
    #: A fleet-simulation cell: the canonical JSON of a
    #: :class:`repro.cluster.FleetTopology` payload.  When set, the cell is
    #: executed through the cluster layer and the fleet/device/job fields
    #: above are ignored except for bookkeeping.
    fleet: Optional[str] = None
    #: Fault schedule for this cell: canonical JSON of a fault spec
    #: (``{"events": [...], "policy": {...}}``, see
    #: :func:`repro.cluster.faults.parse_fault_spec`).  Fleet cells merge it
    #: into the topology (overriding any schedule the fleet JSON carries);
    #: device cells wrap their devices in
    #: :class:`~repro.cluster.faults.FaultInjector` proxies with exact-time
    #: flips.  Part of the cache key -- a different fault schedule is a
    #: different experiment.
    faults: Optional[str] = None
    #: Shard count for fleet cells (``SweepRunner(fleet_shards=...)`` /
    #: ``run --shards``): >1 nests cluster-level sharding inside the sweep
    #: pool's cell-level parallelism.  Excluded from the cache key --
    #: sharded runs are bit-identical to serial ones, so any layout may
    #: serve a cached result.
    fleet_shards: int = 1
    #: Fleet execution knobs as the sorted non-default pairs of a
    #: :class:`repro.cluster.FleetRunConfig` (``run:`` block in documents,
    #: ``SweepRunner(fleet_config=...)``).  Supersedes ``fleet_shards``
    #: (kept as a deprecated alias).  Excluded from the cache key like
    #: ``fleet_shards``: every transport/layout is bit-identical.
    fleet_run: tuple = ()
    #: Free-form labels carried through to the result (not part of the job).
    labels: tuple = ()

    def to_payload(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["pattern_params"] = list(list(pair) for pair in self.pattern_params)
        payload["device_params"] = list(list(pair) for pair in self.device_params)
        payload["labels"] = list(list(pair) for pair in self.labels)
        payload["streams"] = [
            [name, [list(pair) for pair in overrides]]
            for name, overrides in self.streams
        ]
        payload["fleet_run"] = [list(pair) for pair in self.fleet_run]
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "CellSpec":
        data = dict(payload)
        data["pattern_params"] = tuple(tuple(pair) for pair in data.get("pattern_params", ()))
        data["device_params"] = tuple(tuple(pair) for pair in data.get("device_params", ()))
        data["labels"] = tuple(tuple(pair) for pair in data.get("labels", ()))
        data["streams"] = tuple(
            (name, tuple(tuple(pair) for pair in overrides))
            for name, overrides in data.get("streams", ()))
        data["fleet_run"] = tuple(tuple(pair)
                                  for pair in data.get("fleet_run", ()))
        return cls(**data)

    def run_config(self):
        """The cell's :class:`repro.cluster.FleetRunConfig`: ``fleet_run``
        pairs, with the deprecated ``fleet_shards`` alias folded in when
        the pairs do not set a shard count themselves."""
        from repro.cluster import FleetRunConfig

        config = FleetRunConfig.from_pairs(self.fleet_run)
        if self.fleet_shards > 1 and "shards" not in dict(self.fleet_run):
            config = config.merged(shards=self.fleet_shards)
        return config

    def stream_specs(self) -> list[tuple[str, dict[str, Any]]]:
        """The streams as ``(name, overrides-dict)`` pairs (run order)."""
        return [(name, dict(overrides)) for name, overrides in self.streams]

    def to_document(self) -> dict[str, Any]:
        """The human-editable document form (defaults omitted, mappings
        instead of sorted pairs); see :mod:`repro.config`."""
        from repro.config import cell_to_document

        return cell_to_document(self)

    @classmethod
    def from_document(cls, document: Mapping[str, Any],
                      path: str = "cell") -> "CellSpec":
        """Build from a document, validating with path-addressed errors."""
        from repro.config import cell_from_document

        return cell_from_document(document, path=path)

    def cache_key(self) -> str:
        # Labels are cosmetic (display/lookup only); excluding them keeps the
        # cache warm across label renames and lets diff_results align cells
        # with identical physics.  fleet_shards / fleet_run are execution
        # details: the cluster layer guarantees bit-identical metrics for
        # every layout and transport.
        payload = self.to_payload()
        payload.pop("labels")
        payload.pop("fleet_shards")
        run_pairs = dict(tuple(pair) for pair in payload.pop("fleet_run"))
        if "epoch_us" in run_pairs:
            # The one fleet_run field that is physics, not layout: the
            # coordinator rescales the topology's synchronization grid, so
            # a different epoch is a different experiment.
            payload["epoch_us_override"] = run_pairs["epoch_us"]
        return spec_hash({"version": CACHE_VERSION,
                          "models": model_fingerprint(),
                          "cell": payload})


#: FioJob fields a cell (and a stream override) may set.
_JOB_FIELDS = ("pattern", "io_size", "queue_depth", "write_ratio", "io_count",
               "total_bytes", "runtime_us", "ramp_ios", "think_time_us",
               "pattern_params", "seed")


def _job_from_cell(cell: CellSpec, name: str, overrides: Mapping[str, Any],
                   index: int):
    """Build one stream's FioJob: cell fields as defaults, overrides on top."""
    from repro.workload.fio import FioJob

    fields = {field_name: getattr(cell, field_name) for field_name in _JOB_FIELDS}
    # Unless a stream pins its own seed, derive one per stream so concurrent
    # streams never share an RNG sequence.  Hash-derived (not additive):
    # ``seed + k*index`` schemes collide across cells whose base seeds
    # differ by a multiple of k.
    fields["seed"] = derive_seed(cell.seed, {"stream": name, "index": index})
    for key, value in overrides.items():
        if key == "pattern_params":
            value = tuple(tuple(pair) for pair in value)
        fields[key] = value
    return FioJob(name=name, **fields)


def _run_stream_cell(cell: CellSpec) -> dict[str, Any]:
    """Execute a multi-stream cell: all streams share one simulation.

    Faulted single-device cells also route here (a faulted single-job cell
    is just a one-stream cell): every device is wrapped in a
    :class:`~repro.cluster.faults.FaultInjector` proxy and the schedule's
    offline/online flips run at their exact requested times.
    """
    from repro.devices import create_device
    from repro.experiments.common import ExperimentScale
    from repro.metrics.latency import LatencyRecorder
    from repro.sim import Simulator, Tracer
    from repro.workload.fio import run_streams

    sim = Simulator()
    scale = ExperimentScale(ssd_capacity_bytes=cell.ssd_capacity_bytes,
                            essd_capacity_bytes=cell.essd_capacity_bytes)
    tracer = Tracer(sim) if cell.trace else None
    fault_events = fault_policy = None
    if cell.faults is not None:
        from repro.cluster.faults import parse_fault_spec
        fault_events, fault_policy = parse_fault_spec(cell.faults)
    proxies = []
    devices: dict[str, Any] = {}
    streams = []
    # A traced single-job cell is just a one-stream cell.
    stream_specs = cell.stream_specs() or [("job", {})]
    for index, (name, overrides) in enumerate(stream_specs):
        device_name = overrides.pop("device", cell.device)
        device = devices.get(device_name)
        if device is None:
            device = create_device(sim, device_name,
                                   capacity_bytes=scale.capacity_of(device_name),
                                   **dict(cell.device_params))
            if cell.preload:
                device.preload()
            if tracer is not None:
                device.set_tracer(tracer)
            if fault_events is not None:
                from repro.cluster.faults import schedule_cell_faults
                device = schedule_cell_faults(sim, [device], fault_events,
                                              fault_policy)[0]
                proxies.append(device)
            devices[device_name] = device
        streams.append((device, _job_from_cell(cell, name, overrides, index),
                        device_name))
    results = run_streams(sim, [(device, job) for device, job, _ in streams])

    started = min(result.started_us for result in results)
    finished = max(result.finished_us for result in results)
    duration = finished - started
    combined = LatencyRecorder()
    for result in results:
        combined = combined.merge(result.latency)
    summary = combined.summary()
    total_read = sum(result.bytes_read for result in results)
    total_written = sum(result.bytes_written for result in results)
    total_ios = sum(result.ios_completed for result in results)
    metrics: dict[str, Any] = {
        "ios_completed": total_ios,
        "bytes_read": total_read,
        "bytes_written": total_written,
        "duration_us": duration,
        "throughput_gbps": (total_read + total_written) / duration / 1000.0
        if duration > 0 else 0.0,
        "iops": total_ios / duration * 1e6 if duration > 0 else 0.0,
        "mean_us": summary.mean_us,
        "p50_us": summary.p50_us,
        "p99_us": summary.p99_us,
        "p999_us": summary.p999_us,
        "max_us": summary.max_us,
        "streams": {},
    }
    for (_device, job, device_name), result in zip(streams, results):
        stream_summary = result.latency.summary()
        metrics["streams"][job.name] = {
            "device": device_name,
            "pattern": job.pattern,
            "queue_depth": job.queue_depth,
            "ios_completed": result.ios_completed,
            "throughput_gbps": result.throughput_gbps,
            "iops": result.iops,
            "mean_us": stream_summary.mean_us,
            "p99_us": stream_summary.p99_us,
            "p999_us": stream_summary.p999_us,
        }
    if proxies:
        metrics["shed_ios"] = sum(proxy.shed_ios for proxy in proxies)
        metrics["shed_bytes"] = sum(proxy.shed_bytes for proxy in proxies)
    if tracer is not None:
        metrics["trace"] = tracer.to_payload()
    return metrics


def fleet_cell_metrics(payload: Mapping[str, Any]) -> dict[str, Any]:
    """The cacheable metrics dict for a fleet cell: headline numbers plus
    the full coordinator payload under ``"fleet"``, minus the
    nondeterministic ``runtime`` section.

    This is the shared cache contract between ``run`` (via
    :func:`_run_fleet_cell`) and the ``fleet`` CLI verb -- both read and
    write the same :class:`SweepCache` entries, so the shape must be built
    in exactly one place.
    """
    from repro.cluster import fleet_headline

    # Wall-clock data is nondeterministic; the cached metrics must not be.
    payload = {key: value for key, value in payload.items()
               if key != "runtime"}
    metrics = fleet_headline(payload)
    metrics["fleet"] = payload
    return metrics


def _run_fleet_cell(cell: CellSpec) -> dict[str, Any]:
    """Execute a fleet cell through the cluster layer.

    ``cell.run_config()`` (the ``fleet_run`` pairs, with the deprecated
    ``fleet_shards`` alias folded in) picks the shard count, transport,
    and run-ahead window.  The default runs the fleet in one in-process
    shard -- the sweep pool already parallelises across cells.  Sharded
    cells nest dedicated worker processes *inside* the pool worker
    (``ProcessPoolExecutor`` workers are non-daemonic, so both levels of
    parallelism nest); results are bit-identical for every layout and
    transport.
    """
    from repro.cluster import FleetCoordinator, FleetTopology

    topology = FleetTopology.from_json(cell.fleet)
    if cell.faults is not None:
        from repro.cluster.faults import parse_fault_spec

        events, policy = parse_fault_spec(cell.faults)
        topology = topology.scaled(faults=events, fault_policy=policy)
    payload = FleetCoordinator(config=cell.run_config()).run(topology)
    return fleet_cell_metrics(payload)


def _run_trace_cell(cell: CellSpec) -> dict[str, Any]:
    """Execute a ``trace-<family>`` cell: open-loop replay of a synthetic
    arrival process (bursty/diurnal/uniform) against the cell's device."""
    from repro.experiments.common import ExperimentScale, build_device
    from repro.sim import Simulator
    from repro.workload.trace import replay_trace, synthesize_trace

    family = cell.pattern[len("trace-"):]
    sim = Simulator()
    scale = ExperimentScale(ssd_capacity_bytes=cell.ssd_capacity_bytes,
                            essd_capacity_bytes=cell.essd_capacity_bytes)
    device = build_device(sim, cell.device, scale,
                          device_params=dict(cell.device_params))
    if cell.preload:
        device.preload()
    if cell.faults is not None:
        from repro.cluster.faults import parse_fault_spec, schedule_cell_faults

        events, policy = parse_fault_spec(cell.faults)
        device = schedule_cell_faults(sim, [device], events, policy)[0]
    params = dict(cell.pattern_params)
    params.setdefault("duration_us", cell.runtime_us or 100_000.0)
    params.setdefault("io_size", cell.io_size)
    if cell.write_ratio is not None:
        params.setdefault("write_ratio", cell.write_ratio)
    params.setdefault("region_bytes", device.capacity_bytes)
    trace = synthesize_trace(family, seed=cell.seed, **params)
    result = replay_trace(sim, device, trace)
    summary = result.latency.summary()
    duration = result.timeline.duration_us
    metrics = {
        "ios_completed": result.ios_completed,
        "bytes_read": trace.read_bytes(),
        "bytes_written": trace.write_bytes(),
        "duration_us": duration,
        "throughput_gbps": result.timeline.average_gbps(),
        "iops": result.ios_completed / duration * 1e6 if duration > 0 else 0.0,
        "mean_us": summary.mean_us,
        "p50_us": summary.p50_us,
        "p99_us": summary.p99_us,
        "p999_us": summary.p999_us,
        "max_us": summary.max_us,
        "unfinished": result.unfinished,
        "offered_mean_gbps": trace.mean_load_gbps(),
        "offered_peak_gbps": trace.peak_load_gbps(),
    }
    if cell.faults is not None:
        metrics["shed_ios"] = device.shed_ios
        metrics["shed_bytes"] = device.shed_bytes
    return metrics


def run_cell(cell: CellSpec) -> dict[str, Any]:
    """Execute one cell on a fresh simulator and return its metrics dict.

    Top-level (picklable) so it can run inside a worker process.  The imports
    are local so that importing :mod:`repro.experiments.sweep` does not pull
    the whole device stack into processes that only expand grids.
    """
    from repro.experiments.common import DeviceKind, ExperimentScale, measure_cell
    from repro.workload.fio import FioJob

    if cell.fleet is not None:
        return _run_fleet_cell(cell)
    if cell.pattern.startswith("trace-"):
        return _run_trace_cell(cell)
    if cell.streams or cell.faults is not None:
        # Faulted single-job cells route through the stream runner, which
        # knows how to wrap devices in FaultInjector proxies.
        return _run_stream_cell(cell)

    kind = DeviceKind(cell.device)
    scale = ExperimentScale(ssd_capacity_bytes=cell.ssd_capacity_bytes,
                            essd_capacity_bytes=cell.essd_capacity_bytes)
    job = FioJob(
        name=f"sweep-{cell.device}-{cell.pattern}",
        pattern=cell.pattern,
        io_size=cell.io_size,
        queue_depth=cell.queue_depth,
        write_ratio=cell.write_ratio,
        io_count=cell.io_count,
        total_bytes=cell.total_bytes,
        runtime_us=cell.runtime_us,
        ramp_ios=cell.ramp_ios,
        think_time_us=cell.think_time_us,
        pattern_params=cell.pattern_params,
        seed=cell.seed,
    )
    result, device = measure_cell(kind, job, scale, preload=cell.preload,
                                  return_device=True, trace=cell.trace,
                                  device_params=dict(cell.device_params))
    summary = result.latency.summary()
    metrics: dict[str, Any] = {
        "ios_completed": result.ios_completed,
        "bytes_read": result.bytes_read,
        "bytes_written": result.bytes_written,
        "duration_us": result.duration_us,
        "throughput_gbps": result.throughput_gbps,
        "read_throughput_gbps": result.read_throughput_gbps,
        "write_throughput_gbps": result.write_throughput_gbps,
        "iops": result.iops,
        "mean_us": summary.mean_us,
        "p50_us": summary.p50_us,
        "p99_us": summary.p99_us,
        "p999_us": summary.p999_us,
        "max_us": summary.max_us,
    }
    if cell.series_bin_us is not None:
        # The requested width is an upper bound: the bin also shrinks so the
        # run spans >= 24 bins, otherwise short (test-scale) runs could not
        # locate throughput transitions like the GC cliff.
        bin_us = cell.series_bin_us
        if bin_us == "auto":
            bin_us = max(1000.0, result.duration_us / 24)
        else:
            bin_us = max(1000.0, min(float(bin_us), result.duration_us / 24))
        samples = result.timeline.binned(float(bin_us))
        metrics["series"] = [
            [sample.bytes_completed, sample.gigabytes_per_second]
            for sample in samples
        ]
        metrics["series_bin_us"] = float(bin_us)
    for attr in ("write_amplification", "flow_limited"):
        if hasattr(device, attr):
            metrics[attr] = getattr(device, attr)
    if device.tracer is not None:
        metrics["trace"] = device.tracer.to_payload()
    return metrics


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

class SweepCache:
    """One JSON file per cell under ``<root>/<scenario>/<cell-hash>.json``."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path_for(self, scenario: str, cell: CellSpec) -> Path:
        return self.root / scenario / f"{cell.cache_key()}.json"

    def load(self, scenario: str, cell: CellSpec) -> Optional[dict[str, Any]]:
        path = self.path_for(scenario, cell)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("version") != CACHE_VERSION:
            return None
        return payload.get("metrics")

    def store(self, scenario: str, cell: CellSpec, metrics: Mapping[str, Any]) -> Path:
        path = self.path_for(scenario, cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "scenario": scenario,
            "cell": cell.to_payload(),
            "metrics": dict(metrics),
        }
        # Atomic publish: a private temp file in the same directory, then
        # os.replace.  Concurrent writers of the same cell (several serve
        # jobs, a serve job racing a batch CLI) each rename a complete file,
        # so a reader can never observe a torn JSON -- and a crash mid-write
        # leaves only a stray *.tmp, never a corrupt cache entry.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=f".{path.stem}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(canonical_json(payload))
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellOutcome:
    """A cell spec together with its measured (or cached) metrics."""

    cell: CellSpec
    metrics: dict[str, Any]
    cached: bool = False

    @property
    def params(self) -> dict[str, Any]:
        return dict(self.cell.labels)


@dataclass
class SweepResult:
    """All cell outcomes of one scenario sweep."""

    scenario: str
    outcomes: list[CellOutcome] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    def metric(self, metric: str) -> list[float]:
        return [outcome.metrics.get(metric) for outcome in self.outcomes]

    def find(self, **labels) -> CellOutcome:
        """The unique outcome whose cell labels/fields match ``labels``."""
        matches = []
        for outcome in self.outcomes:
            cell_fields = outcome.cell.to_payload()
            cell_fields.update(outcome.params)
            if all(cell_fields.get(key) == value for key, value in labels.items()):
                matches.append(outcome)
        if not matches:
            raise KeyError(labels)
        if len(matches) > 1:
            raise KeyError(f"labels {labels} match {len(matches)} cells")
        return matches[0]

    def to_payload(self) -> dict[str, Any]:
        return {
            "version": CACHE_VERSION,
            "scenario": self.scenario,
            "cells": [
                {"cell": outcome.cell.to_payload(), "metrics": outcome.metrics,
                 "cached": outcome.cached}
                for outcome in self.outcomes
            ],
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_payload(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SweepResult":
        payload = json.loads(Path(path).read_text())
        result = cls(scenario=payload["scenario"])
        for entry in payload["cells"]:
            result.outcomes.append(CellOutcome(
                cell=CellSpec.from_payload(entry["cell"]),
                metrics=entry["metrics"],
                cached=entry.get("cached", False),
            ))
        return result


def diff_results(a: SweepResult, b: SweepResult,
                 metric: str = "throughput_gbps") -> list[dict[str, Any]]:
    """Per-cell metric comparison between two sweeps keyed by cell hash.

    Returns one row per cell present in either sweep with the metric values
    and the relative change (``None`` when a side is missing).
    """
    def index(result: SweepResult) -> dict[str, CellOutcome]:
        return {outcome.cell.cache_key(): outcome for outcome in result.outcomes}

    left, right = index(a), index(b)
    rows = []
    for key in sorted(set(left) | set(right)):
        outcome = left.get(key) or right.get(key)
        value_a = left[key].metrics.get(metric) if key in left else None
        value_b = right[key].metrics.get(metric) if key in right else None
        change = None

        def _unusable(value) -> bool:
            # A missing side and a NaN measurement both mean "no comparable
            # number": report the raw values, leave the change undefined
            # (NaN != NaN would otherwise always trip --fail-on-change).
            return value is None or (isinstance(value, float) and math.isnan(value))

        if not _unusable(value_a) and not _unusable(value_b):
            if value_a == 0:
                # A zero baseline going nonzero is an infinite relative
                # change -- it must still trip --fail-on-change.
                change = 0.0 if value_b == 0 else math.inf
            else:
                change = (value_b - value_a) / abs(value_a)
        rows.append({
            "cell": outcome.cell.to_payload(),
            "labels": dict(outcome.cell.labels),
            f"{metric}_a": value_a,
            f"{metric}_b": value_b,
            "relative_change": change,
        })
    return rows


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

#: Process pool shared by every SweepRunner in this interpreter.  Spawning a
#: pool per sweep dominated the cost of many-small-cell sweeps; the pool is
#: created lazily on the first parallel run, grown (recreated) if a later
#: run wants more workers, and torn down at interpreter exit.
_SHARED_POOL: Optional[ProcessPoolExecutor] = None
_SHARED_POOL_WORKERS = 0


def shared_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent worker pool, (re)created with >= ``workers`` workers."""
    global _SHARED_POOL, _SHARED_POOL_WORKERS
    if _SHARED_POOL is None or _SHARED_POOL_WORKERS < workers:
        if _SHARED_POOL is not None:
            _SHARED_POOL.shutdown(wait=False)
        _SHARED_POOL = ProcessPoolExecutor(max_workers=workers)
        _SHARED_POOL_WORKERS = workers
    return _SHARED_POOL


def shutdown_shared_pool() -> None:
    """Tear down the persistent pool (no-op when none exists)."""
    global _SHARED_POOL, _SHARED_POOL_WORKERS
    if _SHARED_POOL is not None:
        _SHARED_POOL.shutdown(wait=True)
        _SHARED_POOL = None
        _SHARED_POOL_WORKERS = 0


atexit.register(shutdown_shared_pool)


class SweepRunner:
    """Executes the cells of a scenario, optionally in parallel, with caching.

    Parameters
    ----------
    parallel:
        Run independent cells across worker processes.  Results are identical
        to serial execution (each cell owns its simulator and seed).
    max_workers:
        Worker-process count (default: ``os.cpu_count()`` capped at the cell
        count).
    cache_dir:
        Directory for the JSON result cache; ``None`` disables caching.
    force:
        Ignore cached results and re-run every cell.
    fleet_config:
        A :class:`repro.cluster.FleetRunConfig` applied to every fleet
        cell (nested inside the sweep pool's cell-level parallelism).
        Fields a cell's own ``fleet_run`` pairs set win over the runner's.
        Metrics are bit-identical for every layout and transport, so
        caching is unaffected.
    fleet_shards:
        Deprecated alias for ``fleet_config=FleetRunConfig(shards=N)``.
    """

    def __init__(self, parallel: bool = False, max_workers: Optional[int] = None,
                 cache_dir: Optional[str | Path] = None, force: bool = False,
                 fleet_shards: int = 1, fleet_config=None):
        self.parallel = parallel
        self.max_workers = max_workers
        self.cache = SweepCache(cache_dir) if cache_dir is not None else None
        self.force = force
        self.fleet_shards = fleet_shards
        self.fleet_config = fleet_config

    def _fleet_pairs(self) -> tuple:
        """The runner-level ``fleet_run`` pairs: ``fleet_config`` plus the
        deprecated ``fleet_shards`` alias (explicit config wins)."""
        pairs = {} if self.fleet_config is None \
            else dict(self.fleet_config.to_pairs())
        if self.fleet_shards > 1:
            pairs.setdefault("shards", self.fleet_shards)
        return tuple(sorted(pairs.items()))

    def run_cells(self, scenario: str, cells: Sequence[CellSpec]) -> SweepResult:
        """Run (or load from cache) every cell and return the sweep result."""
        runner_pairs = self._fleet_pairs()
        if runner_pairs:
            # Per-cell pairs (from a document's run: block) win field by
            # field over the runner-level config.  The deprecated
            # fleet_shards field mirrors the merged shard count so
            # pre-transport callers keep seeing it.
            def apply_runner_config(cell: CellSpec) -> CellSpec:
                if cell.fleet is None:
                    return cell
                merged = {**dict(runner_pairs), **dict(cell.fleet_run)}
                return replace(
                    cell, fleet_run=tuple(sorted(merged.items())),
                    fleet_shards=merged.get("shards", cell.fleet_shards))

            cells = [apply_runner_config(cell) for cell in cells]
        result = SweepResult(scenario=scenario)
        outcomes: list[Optional[CellOutcome]] = [None] * len(cells)
        pending: list[tuple[int, CellSpec]] = []
        for index, cell in enumerate(cells):
            cached = None if (self.cache is None or self.force) \
                else self.cache.load(scenario, cell)
            if cached is not None:
                outcomes[index] = CellOutcome(cell=cell, metrics=cached, cached=True)
            else:
                pending.append((index, cell))

        if pending:
            fresh = self._execute([cell for _, cell in pending])
            for (index, cell), metrics in zip(pending, fresh):
                if self.cache is not None:
                    self.cache.store(scenario, cell, metrics)
                outcomes[index] = CellOutcome(cell=cell, metrics=metrics, cached=False)

        result.outcomes = [outcome for outcome in outcomes if outcome is not None]
        return result

    def run(self, spec) -> SweepResult:
        """Expand a :class:`ScenarioSpec` and run its cells."""
        return self.run_cells(spec.name, spec.cells())

    # -- internals ---------------------------------------------------------
    def _execute(self, cells: Sequence[CellSpec]) -> list[dict[str, Any]]:
        if not self.parallel or len(cells) <= 1:
            return [run_cell(cell) for cell in cells]
        workers = self.max_workers or os.cpu_count() or 2
        workers = max(1, min(workers, len(cells)))
        # The pool persists across run() calls (and runners); see shared_pool.
        return list(shared_pool(workers).map(run_cell, cells))


def quick_cells(cells: Sequence[CellSpec], io_count: int = 60) -> list[CellSpec]:
    """Shrink every cell's I/O budget (used by ``--quick`` CLI runs).

    Count-bounded cells are capped at ``io_count`` I/Os; byte-bounded cells
    (sustained floods) are cut to an eighth of their volume, floored so at
    least ``io_count`` I/Os still run.  Stream overrides shrink the same
    way.  Trace-replay cells cap the synthesized duration, and fleet cells
    shrink every tenant workload inside the topology.
    """
    QUICK_TRACE_DURATION_US = 100_000.0

    def shrink_fleet(fleet_json: str) -> str:
        payload = json.loads(fleet_json)
        for tenant in payload.get("tenants", ()):
            workload = tenant.get("workload", {})
            if workload.get("io_count") is not None:
                workload["io_count"] = min(workload["io_count"], io_count)
            if workload.get("duration_us") is not None:
                workload["duration_us"] = min(workload["duration_us"],
                                              QUICK_TRACE_DURATION_US)
            if workload.get("total_bytes") is not None:
                # Byte-bounded tenant floods shrink like device cells: an
                # eighth of the volume, floored at io_count I/Os.
                tenant_io_size = workload.get("io_size", 4096)
                workload["total_bytes"] = min(
                    workload["total_bytes"],
                    max(tenant_io_size * io_count,
                        workload["total_bytes"] // 8))
        return canonical_json(payload)
    def shrink_streams(cell: CellSpec) -> tuple:
        shrunk_streams = []
        for name, overrides in cell.streams:
            fields = dict(overrides)
            if fields.get("io_count") is not None:
                fields["io_count"] = min(fields["io_count"], io_count)
            elif fields.get("total_bytes") is not None:
                # A stream without its own io_size inherits the cell's.
                stream_io_size = fields.get("io_size", cell.io_size)
                fields["total_bytes"] = min(
                    fields["total_bytes"],
                    max(stream_io_size * io_count,
                        fields["total_bytes"] // 8))
            shrunk_streams.append((name, tuple(sorted(fields.items()))))
        return tuple(shrunk_streams)

    shrunk = []
    for cell in cells:
        changes: dict[str, Any] = {}
        if cell.fleet is not None:
            changes["fleet"] = shrink_fleet(cell.fleet)
        elif cell.pattern.startswith("trace-"):
            params = dict(cell.pattern_params)
            duration = params.get("duration_us", cell.runtime_us or 100_000.0)
            params["duration_us"] = min(duration, QUICK_TRACE_DURATION_US)
            changes["pattern_params"] = tuple(sorted(params.items()))
        elif cell.io_count is not None:
            changes["io_count"] = min(cell.io_count, io_count)
        elif cell.total_bytes is not None:
            quick_bytes = max(cell.io_size * io_count, cell.total_bytes // 8)
            changes["total_bytes"] = min(cell.total_bytes, quick_bytes)
        if cell.streams:
            changes["streams"] = shrink_streams(cell)
        shrunk.append(replace(cell, **changes) if changes else cell)
    return shrunk
