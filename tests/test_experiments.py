"""Tests for the paper-experiment harness (Table I, Figures 2-5) at tiny scale."""

import pytest

from repro.experiments import (
    DeviceKind,
    ExperimentScale,
    build_device,
    render_table1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table1,
)
from repro.experiments.figure2 import PAPER_IO_SIZES, PAPER_QUEUE_DEPTHS
from repro.host.io import KiB, MiB
from repro.sim import Simulator

TINY = ExperimentScale(ssd_capacity_bytes=96 * MiB, essd_capacity_bytes=192 * MiB)


def test_experiment_scale_presets_keep_capacity_ratio():
    for scale in (ExperimentScale.small(), ExperimentScale.default(), ExperimentScale.large()):
        assert scale.essd_capacity_bytes == 2 * scale.ssd_capacity_bytes
    assert TINY.capacity_of(DeviceKind.SSD) == 96 * MiB
    assert TINY.capacity_of(DeviceKind.ESSD1) == 192 * MiB


def test_build_device_returns_all_three_kinds():
    sim = Simulator()
    ssd = build_device(sim, DeviceKind.SSD, TINY)
    essd1 = build_device(sim, DeviceKind.ESSD1, TINY)
    essd2 = build_device(sim, DeviceKind.ESSD2, TINY)
    assert ssd.capacity_bytes == 96 * MiB
    assert essd1.capacity_bytes == essd2.capacity_bytes == 192 * MiB
    assert essd1.name == "ESSD-1" and essd2.name == "ESSD-2"
    with pytest.raises(ValueError):
        build_device(sim, "nope", TINY)


def test_table1_rows_and_rendering():
    rows = run_table1(TINY)
    assert [row.device for row in rows] == ["ESSD-1", "ESSD-2", "SSD"]
    assert rows[0].max_bandwidth_gbps == pytest.approx(3.0)
    assert rows[1].max_bandwidth_gbps == pytest.approx(1.1)
    text = render_table1(rows)
    assert "Amazon AWS io2" in text and "Alibaba Cloud PL3" in text


def test_figure2_paper_grid_constants_match_paper():
    assert PAPER_IO_SIZES == (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB)
    assert PAPER_QUEUE_DEPTHS == (1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def figure2_result():
    return run_figure2(TINY, io_sizes=(4 * KiB, 256 * KiB), queue_depths=(1, 8),
                       ios_per_cell=60)


def test_figure2_observation1_shape(figure2_result):
    """The latency gap is large at 4KiB/QD1 and shrinks when I/Os scale up."""
    for essd in (DeviceKind.ESSD1, DeviceKind.ESSD2):
        small_gap = figure2_result.gap(essd, "randwrite", 4 * KiB, 1)
        big_io_gap = figure2_result.gap(essd, "randwrite", 256 * KiB, 1)
        deep_gap = figure2_result.gap(essd, "randwrite", 4 * KiB, 8)
        assert small_gap > 8.0
        assert big_io_gap < small_gap
        assert deep_gap < small_gap


def test_figure2_random_read_gap_smaller_than_write_gap(figure2_result):
    """Random reads show the smallest gap (SSD reads are not buffered)."""
    for essd in (DeviceKind.ESSD1, DeviceKind.ESSD2):
        read_gap = figure2_result.gap(essd, "randread", 4 * KiB, 1)
        write_gap = figure2_result.gap(essd, "randwrite", 4 * KiB, 1)
        assert read_gap < write_gap


def test_figure2_render_and_lookup(figure2_result):
    text = figure2_result.render(DeviceKind.ESSD1, "mean")
    assert "Random Write" in text and "4KiB" in text
    assert figure2_result.max_gap(DeviceKind.ESSD1) > 1.0
    assert len(figure2_result.gap_by_pattern(DeviceKind.ESSD2, "randread")) == 4
    with pytest.raises(KeyError):
        figure2_result.cell(DeviceKind.SSD, "randwrite", 999, 1)
    with pytest.raises(ValueError):
        figure2_result.gap(DeviceKind.ESSD1, "randwrite", 4 * KiB, 1, metric="nope")


def test_figure3_ssd_cliffs_but_essd2_does_not():
    gc_scale = ExperimentScale(ssd_capacity_bytes=256 * MiB,
                               essd_capacity_bytes=256 * MiB)
    result = run_figure3(gc_scale, capacity_factor=1.8,
                         devices=(DeviceKind.SSD, DeviceKind.ESSD2))
    ssd = result.results[DeviceKind.SSD]
    essd2 = result.results[DeviceKind.ESSD2]
    ssd_cliff = ssd.cliff_capacity_factor(drop_fraction=0.65)
    assert ssd_cliff is not None and ssd_cliff < 1.7
    assert essd2.cliff_capacity_factor(drop_fraction=0.65) is None
    assert essd2.sustained_fraction() > ssd.sustained_fraction()
    assert ssd.write_amplification is not None and ssd.write_amplification > 1.0
    assert "Figure 3" in result.render()


def test_figure4_gains_match_contract_shape():
    result = run_figure4(TINY, io_sizes=(16 * KiB,), queue_depths=(32,),
                         ios_per_cell=400)
    essd2_gain = result.max_gain(DeviceKind.ESSD2)
    ssd_gain = result.max_gain(DeviceKind.SSD)
    assert essd2_gain > 1.4
    assert ssd_gain < 1.25
    grid = result.gain_grid(DeviceKind.ESSD2)
    assert (16 * KiB, 32) in grid
    assert "Figure 4" in result.render(DeviceKind.ESSD2)
    with pytest.raises(KeyError):
        result.cell(DeviceKind.SSD, 1, 1)


def test_figure5_essd_throughput_flat_and_within_budget():
    result = run_figure5(TINY, write_ratios=(0, 50, 100), ios_per_point=250,
                         queue_depth=16)
    for essd in (DeviceKind.ESSD1, DeviceKind.ESSD2):
        assert result.determinism_cv(essd) < 0.12
        assert result.within_budget(essd)
    assert result.determinism_cv(DeviceKind.SSD) > result.determinism_cv(DeviceKind.ESSD1)
    assert len(result.series(DeviceKind.ESSD1)) == 3
    assert "Figure 5" in result.render()
