"""The contract checker: verify the four observations against simulated devices.

:class:`ContractChecker` runs small, targeted versions of the paper's
characterization experiments against one ESSD (and a local-SSD baseline) and
produces an :class:`~repro.core.contract.ObservationEvidence` per observation.
This is the programmatic core of the repository: the full experiment
harness in :mod:`repro.experiments` reuses the same machinery at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.contract import UNWRITTEN_CONTRACT, ObservationEvidence
from repro.ebs import EssdDevice, EssdProfile, aws_io2_profile
from repro.host.io import GiB, KiB, MiB
from repro.metrics.stats import coefficient_of_variation, latency_gap, throughput_gain
from repro.sim import Simulator
from repro.ssd import SsdConfig, SsdDevice, samsung_970pro_profile
from repro.workload.fio import FioJob, run_job


@dataclass
class CheckerConfig:
    """Knobs controlling how much work each observation check performs."""

    #: Device capacities used for the checks (scaled; ratios preserved).
    ssd_capacity_bytes: int = 512 * MiB
    essd_capacity_bytes: int = 1 * GiB
    #: I/Os per latency cell (Observation 1).
    latency_ios: int = 300
    #: Capacity multiples written in the GC check (Observation 2).
    gc_write_capacity_factor: float = 1.6
    #: Simulated time per throughput measurement (us) for Observations 3-4.
    throughput_window_us: float = 150_000.0
    #: Latency-gap factor that counts as "much higher" for Observation 1.
    small_io_gap_threshold: float = 10.0
    #: Minimum random/sequential gain that confirms Observation 3.
    gain_threshold: float = 1.15
    #: Maximum coefficient of variation that counts as "deterministic" (Obs. 4).
    determinism_cv_threshold: float = 0.10


@dataclass
class ContractReport:
    """The checker's overall verdict for one device pair."""

    essd_name: str
    ssd_name: str
    evidence: list[ObservationEvidence] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """Whether every observation of the contract held."""
        return all(item.holds for item in self.evidence)

    def evidence_for(self, observation_number: int) -> ObservationEvidence:
        for item in self.evidence:
            if item.observation.number == observation_number:
                return item
        raise KeyError(f"no evidence for observation #{observation_number}")

    def summary(self) -> str:
        lines = [f"Contract check: {self.essd_name} vs {self.ssd_name}"]
        for item in self.evidence:
            status = "HOLDS" if item.holds else "VIOLATED"
            lines.append(f"  {item.observation.identifier} [{status}] {item.summary}")
        return "\n".join(lines)


class ContractChecker:
    """Runs the four observation checks for one ESSD profile."""

    def __init__(self, essd_profile: Optional[EssdProfile] = None,
                 ssd_config: Optional[SsdConfig] = None,
                 config: Optional[CheckerConfig] = None):
        self.config = config or CheckerConfig()
        self.essd_profile = (essd_profile or aws_io2_profile()).with_capacity(
            self.config.essd_capacity_bytes)
        self.ssd_config = (ssd_config
                           or samsung_970pro_profile(self.config.ssd_capacity_bytes))
        self.contract = UNWRITTEN_CONTRACT

    # -- device factories -----------------------------------------------------------
    def _fresh_essd(self, sim: Simulator) -> EssdDevice:
        return EssdDevice(sim, self.essd_profile)

    def _fresh_ssd(self, sim: Simulator) -> SsdDevice:
        return SsdDevice(sim, self.ssd_config)

    def _measure_latency(self, device_factory: Callable[[Simulator], object],
                         pattern: str, io_size: int, queue_depth: int,
                         preload: bool = False) -> float:
        sim = Simulator()
        device = device_factory(sim)
        if preload:
            device.preload()
        job = FioJob(name="lat", pattern=pattern, io_size=io_size,
                     queue_depth=queue_depth, io_count=self.config.latency_ios)
        result = run_job(sim, device, job)
        return result.latency.mean()

    def _measure_throughput(self, device_factory: Callable[[Simulator], object],
                            pattern: str, io_size: int, queue_depth: int,
                            write_ratio: Optional[float] = None) -> float:
        sim = Simulator()
        device = device_factory(sim)
        device.preload()
        job = FioJob(name="tp", pattern=pattern, io_size=io_size,
                     queue_depth=queue_depth, write_ratio=write_ratio,
                     runtime_us=self.config.throughput_window_us)
        result = run_job(sim, device, job)
        return result.throughput_gbps

    # -- observation checks -----------------------------------------------------------
    def check_observation_1(self) -> ObservationEvidence:
        """Small/unscaled I/Os suffer a large latency gap that shrinks with scale."""
        gaps = {}
        for label, (io_size, qd) in {
            "small_4k_qd1": (4 * KiB, 1),
            "scaled_256k_qd1": (256 * KiB, 1),
            "scaled_4k_qd16": (4 * KiB, 16),
        }.items():
            essd = self._measure_latency(self._fresh_essd, "randwrite", io_size, qd)
            ssd = self._measure_latency(self._fresh_ssd, "randwrite", io_size, qd)
            gaps[label] = latency_gap(essd, ssd)
        holds = (gaps["small_4k_qd1"] >= self.config.small_io_gap_threshold
                 and gaps["scaled_256k_qd1"] < gaps["small_4k_qd1"]
                 and gaps["scaled_4k_qd16"] < gaps["small_4k_qd1"])
        summary = (f"4KiB/QD1 gap {gaps['small_4k_qd1']:.1f}x, shrinking to "
                   f"{gaps['scaled_256k_qd1']:.1f}x at 256KiB and "
                   f"{gaps['scaled_4k_qd16']:.1f}x at QD16")
        return ObservationEvidence(self.contract.observation(1), holds, summary, gaps)

    def check_observation_2(self) -> ObservationEvidence:
        """The SSD hits a GC cliff within ~1x capacity; the ESSD does not."""
        metrics = {}
        for name, factory, capacity in (
                ("ssd", self._fresh_ssd, self.ssd_config.capacity_bytes),
                ("essd", self._fresh_essd, self.essd_profile.capacity_bytes)):
            sim = Simulator()
            device = factory(sim)
            job = FioJob(name="gc", pattern="randwrite", io_size=128 * KiB,
                         queue_depth=32,
                         total_bytes=int(self.config.gc_write_capacity_factor * capacity))
            result = run_job(sim, device, job)
            series = result.timeline.binned(bin_us=50_000.0)
            if not series:
                metrics[f"{name}_cliff_factor"] = None
                continue
            peak = max(sample.gigabytes_per_second for sample in series)
            cliff_factor = None
            written = 0
            for sample in series:
                written += sample.bytes_completed
                if sample.gigabytes_per_second < 0.6 * peak:
                    cliff_factor = written / capacity
                    break
            metrics[f"{name}_cliff_factor"] = cliff_factor
            metrics[f"{name}_peak_gbps"] = peak
        ssd_cliff = metrics.get("ssd_cliff_factor")
        essd_cliff = metrics.get("essd_cliff_factor")
        holds = ssd_cliff is not None and ssd_cliff <= 1.5 and (
            essd_cliff is None or essd_cliff > ssd_cliff * 1.5)
        essd_text = "none" if essd_cliff is None else f"{essd_cliff:.2f}x"
        ssd_text = "none" if ssd_cliff is None else f"{ssd_cliff:.2f}x"
        summary = (f"SSD throughput cliff after {ssd_text} of capacity written; "
                   f"ESSD cliff: {essd_text}")
        return ObservationEvidence(self.contract.observation(2), holds, summary, metrics)

    def check_observation_3(self) -> ObservationEvidence:
        """Random writes outperform sequential writes on the ESSD, not the SSD."""
        io_size, qd = 16 * KiB, 32
        essd_rand = self._measure_throughput(self._fresh_essd, "randwrite", io_size, qd)
        essd_seq = self._measure_throughput(self._fresh_essd, "write", io_size, qd)
        ssd_rand = self._measure_throughput(self._fresh_ssd, "randwrite", io_size, qd)
        ssd_seq = self._measure_throughput(self._fresh_ssd, "write", io_size, qd)
        essd_gain = throughput_gain(essd_rand, essd_seq)
        ssd_gain = throughput_gain(ssd_rand, ssd_seq)
        holds = essd_gain >= self.config.gain_threshold and ssd_gain < self.config.gain_threshold
        summary = (f"ESSD random/sequential write gain {essd_gain:.2f}x "
                   f"(SSD: {ssd_gain:.2f}x) at {io_size // KiB}KiB QD{qd}")
        metrics = {
            "essd_random_gbps": essd_rand,
            "essd_sequential_gbps": essd_seq,
            "essd_gain": essd_gain,
            "ssd_random_gbps": ssd_rand,
            "ssd_sequential_gbps": ssd_seq,
            "ssd_gain": ssd_gain,
        }
        return ObservationEvidence(self.contract.observation(3), holds, summary, metrics)

    def check_observation_4(self) -> ObservationEvidence:
        """Max bandwidth is flat across write ratios on the ESSD, not the SSD."""
        ratios = (0.0, 0.3, 0.7, 1.0)
        essd_tp = [self._measure_throughput(self._fresh_essd, "randrw", 128 * KiB, 32,
                                            write_ratio=ratio) for ratio in ratios]
        ssd_tp = [self._measure_throughput(self._fresh_ssd, "randrw", 128 * KiB, 32,
                                           write_ratio=ratio) for ratio in ratios]
        essd_cv = coefficient_of_variation(essd_tp)
        ssd_cv = coefficient_of_variation(ssd_tp)
        budget = self.essd_profile.max_throughput_gbps
        near_budget = all(tp <= budget * 1.05 for tp in essd_tp)
        holds = essd_cv <= self.config.determinism_cv_threshold \
            and ssd_cv > essd_cv and near_budget
        summary = (f"ESSD throughput CV {essd_cv:.3f} (within budget "
                   f"{budget:.2f} GB/s); SSD CV {ssd_cv:.3f}")
        metrics = {
            "write_ratios": list(ratios),
            "essd_gbps": essd_tp,
            "ssd_gbps": ssd_tp,
            "essd_cv": essd_cv,
            "ssd_cv": ssd_cv,
            "budget_gbps": budget,
        }
        return ObservationEvidence(self.contract.observation(4), holds, summary, metrics)

    # -- entry point -----------------------------------------------------------------
    def run(self, observations: Optional[list[int]] = None) -> ContractReport:
        """Run all (or selected) observation checks and return the report."""
        observations = observations or [1, 2, 3, 4]
        checks = {
            1: self.check_observation_1,
            2: self.check_observation_2,
            3: self.check_observation_3,
            4: self.check_observation_4,
        }
        report = ContractReport(essd_name=self.essd_profile.name,
                                ssd_name="local-ssd")
        for number in observations:
            if number not in checks:
                raise ValueError(f"unknown observation #{number}")
            report.evidence.append(checks[number]())
        return report
