"""Fleet-level metric aggregation across shard payloads.

:func:`merge_shard_payloads` takes the per-shard measurement payloads
(:meth:`repro.cluster.shard.ShardWorker.collect`) and folds them into one
fleet report with three levels of aggregation:

* **per tenant** -- the tenant's traffic merged across every device it ran
  on (latency percentiles over the pooled samples, fleet-wide IOPS and
  throughput over the tenant's active window);
* **per group** -- tenant traffic landing on the group's devices plus the
  replica writes the group absorbed through replication edges;
* **fleet-wide** -- everything, plus a binned throughput series.

Merging is deterministic: device payloads are combined in global-index
order and tenants/groups in name order, so a serial run and any sharded
layout produce byte-identical fleet payloads (wall-clock "runtime" data is
kept in a separate section precisely so the physics payload stays
comparable).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.cluster.topology import FleetTopology
from repro.metrics.latency import LatencyRecorder
from repro.metrics.throughput import ThroughputTimeline

__all__ = ["merge_shard_payloads", "fleet_headline"]

#: Number of bins in the fleet throughput-over-time series.
SERIES_BINS = 24


def _summary_dict(recorder: LatencyRecorder) -> dict[str, float]:
    summary = recorder.summary()
    return {
        "mean_us": summary.mean_us,
        "p50_us": summary.p50_us,
        "p99_us": summary.p99_us,
        "p999_us": summary.p999_us,
        "max_us": summary.max_us,
    }


class _Aggregate:
    """Accumulates device payloads in a fixed, layout-independent order."""

    def __init__(self) -> None:
        self.devices = 0
        self.ios = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.recorder = LatencyRecorder()
        self.events: list[tuple[float, int, int]] = []  # (t, gidx, bytes)

    def add(self, index: int, payload: Mapping[str, Any]) -> None:
        self.devices += 1
        self.ios += payload["ios_completed"]
        self.bytes_read += payload["bytes_read"]
        self.bytes_written += payload["bytes_written"]
        started = payload["started_us"]
        finished = payload["finished_us"]
        self.started = started if self.started is None \
            else min(self.started, started)
        self.finished = finished if self.finished is None \
            else max(self.finished, finished)
        self.recorder.extend(payload["latency"])
        self.events.extend((time_us, index, num_bytes)
                           for time_us, num_bytes in payload["timeline"])

    @property
    def duration_us(self) -> float:
        if self.started is None or self.finished is None:
            return 0.0
        return self.finished - self.started

    def timeline(self) -> ThroughputTimeline:
        timeline = ThroughputTimeline()
        # Stable sort on (time, global index): cross-device completions at
        # one timestamp merge in the same order under every shard layout.
        timeline.record_many((time_us, num_bytes) for time_us, _, num_bytes
                             in sorted(self.events, key=lambda e: (e[0], e[1])))
        return timeline

    def to_payload(self) -> dict[str, Any]:
        duration = self.duration_us
        total = self.bytes_read + self.bytes_written
        payload: dict[str, Any] = {
            "devices": self.devices,
            "ios_completed": self.ios,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "duration_us": duration,
            "throughput_gbps": total / duration / 1000.0 if duration > 0 else 0.0,
            "iops": self.ios / duration * 1e6 if duration > 0 else 0.0,
        }
        payload.update(_summary_dict(self.recorder))
        return payload


def merge_shard_payloads(topology: FleetTopology,
                         shard_payloads: Sequence[Mapping[str, Any]],
                         ) -> dict[str, Any]:
    """Merge per-shard measurement payloads into the fleet report."""
    table = topology.device_table()

    # tenant -> {global index -> device payload}, merged across shards.
    per_tenant: dict[str, dict[int, Mapping[str, Any]]] = {}
    for shard in shard_payloads:
        for tenant_name, devices in shard["tenants"].items():
            bucket = per_tenant.setdefault(tenant_name, {})
            for index_str, payload in devices.items():
                bucket[int(index_str)] = payload

    tenants: dict[str, Any] = {}
    groups: dict[str, _Aggregate] = {}
    fleet = _Aggregate()
    for tenant_name in sorted(per_tenant):
        aggregate = _Aggregate()
        for index in sorted(per_tenant[tenant_name]):
            payload = per_tenant[tenant_name][index]
            aggregate.add(index, payload)
            fleet.add(index, payload)
            group_name = table[index][0]
            groups.setdefault(group_name, _Aggregate()).add(index, payload)
        tenants[tenant_name] = aggregate.to_payload()
        tenants[tenant_name]["group"] = next(
            tenant.group for tenant in topology.tenants
            if tenant.name == tenant_name)

    # Replica traffic absorbed per target device, then pooled per group in
    # global-index order -- a split target group merged in shard order
    # would pool the same samples differently and break the bit-identical
    # serial-vs-sharded invariant.
    per_device_replicas: dict[int, dict[str, Any]] = {}
    for shard in shard_payloads:
        for index_str, stats in shard["replicas"].items():
            per_device_replicas[int(index_str)] = stats
    replicas: dict[str, dict[str, Any]] = {}
    for index in sorted(per_device_replicas):
        stats = per_device_replicas[index]
        bucket = replicas.setdefault(
            table[index][0], {"count": 0, "bytes": 0, "latency": []})
        bucket["count"] += stats["count"]
        bucket["bytes"] += stats["bytes"]
        bucket["latency"].extend(stats["latency"])

    group_payloads: dict[str, Any] = {}
    for group in topology.groups:
        aggregate = groups.get(group.name, _Aggregate())
        payload = aggregate.to_payload()
        payload["device_type"] = group.device
        payload["devices"] = group.count
        replica = replicas.get(group.name)
        payload["replica_writes"] = replica["count"] if replica else 0
        payload["replica_bytes"] = replica["bytes"] if replica else 0
        if replica and replica["latency"]:
            recorder = LatencyRecorder()
            recorder.extend(replica["latency"])
            payload["replica_mean_us"] = recorder.mean()
            payload["replica_p99_us"] = recorder.percentile(99)
        group_payloads[group.name] = payload

    fleet_payload = fleet.to_payload()
    fleet_payload["devices"] = topology.total_devices
    fleet_payload["replica_writes"] = sum(
        payload["replica_writes"] for payload in group_payloads.values())
    fleet_payload["replica_bytes"] = sum(
        payload["replica_bytes"] for payload in group_payloads.values())
    duration = fleet.duration_us
    if duration > 0 and fleet.events:
        bin_us = max(1000.0, duration / SERIES_BINS)
        samples = fleet.timeline().binned(bin_us)
        fleet_payload["series_bin_us"] = bin_us
        fleet_payload["series"] = [
            [sample.bytes_completed, sample.gigabytes_per_second]
            for sample in samples
        ]

    return {
        "topology": {
            "name": topology.name,
            "devices": topology.total_devices,
            "groups": len(topology.groups),
            "tenants": len(topology.tenants),
            "edges": len(topology.edges),
            "epoch_us": topology.epoch_us,
            "seed": topology.seed,
        },
        "fleet": fleet_payload,
        "tenants": tenants,
        "groups": group_payloads,
    }


def fleet_headline(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Flat headline metrics (the keys the sweep CLI tables expect)."""
    fleet = payload["fleet"]
    return {key: fleet[key] for key in (
        "ios_completed", "bytes_read", "bytes_written", "duration_us",
        "throughput_gbps", "iops", "mean_us", "p50_us", "p99_us", "p999_us",
        "max_us")}
