"""Implication 3: rethink converting random writes into sequential writes.

Log-structured designs (LSM trees, copy-on-write filesystems) turn random
writes into sequential ones to spare local SSDs from GC -- at the price of
write amplification from compaction/cleaning.  On an ESSD, sequential writes
can actually be the *slower* pattern (Observation 3), which flips the
trade-off.  The advisor combines the measured random/sequential gain with the
software layer's own write amplification to decide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.metrics.stats import throughput_gain


@dataclass(frozen=True)
class WritePatternAdvice:
    """Verdict on keeping a sequentializing (log-structured) write path."""

    keep_sequentializing: bool
    #: Measured device throughput gain of random over sequential writes.
    device_gain: float
    #: Effective application-level throughput ratio of writing in place versus
    #: sequentializing (values > 1 favour writing in place / random writes).
    in_place_advantage: float
    rationale: str


class WritePatternAdvisor:
    """Decides between in-place (random) writes and sequentialized writes."""

    def __init__(self, random_gbps: float, sequential_gbps: float):
        if random_gbps < 0 or sequential_gbps < 0:
            raise ValueError("throughputs must be non-negative")
        self.random_gbps = random_gbps
        self.sequential_gbps = sequential_gbps

    @classmethod
    def from_gain_grid(cls, grid: Mapping[tuple[int, int], tuple[float, float]],
                       io_size: int, queue_depth: int) -> "WritePatternAdvisor":
        """Build from a Figure-4-style grid of {(io_size, qd): (rand, seq)}."""
        if (io_size, queue_depth) not in grid:
            raise KeyError(f"no measurement for ({io_size}, {queue_depth})")
        random_gbps, sequential_gbps = grid[(io_size, queue_depth)]
        return cls(random_gbps, sequential_gbps)

    @property
    def device_gain(self) -> float:
        """Random-over-sequential device throughput gain."""
        return throughput_gain(self.random_gbps, self.sequential_gbps)

    def advise(self, sequentialization_write_amplification: float = 1.3,
               gc_sensitive_device: bool = False,
               min_advantage: float = 1.05) -> WritePatternAdvice:
        """Weigh the device gain against the software layer's amplification.

        Parameters
        ----------
        sequentialization_write_amplification:
            Extra bytes the log-structured layer writes per user byte
            (compaction/cleaning); 1.0 means free sequentialization.
        gc_sensitive_device:
            ``True`` for a local SSD whose GC punishes random writes over
            time -- in that case sequentializing is kept regardless of the
            instantaneous gain.
        min_advantage:
            Advantage below which the advisor keeps the status quo
            (sequentializing), to avoid churn for marginal wins.
        """
        if sequentialization_write_amplification < 1.0:
            raise ValueError("write amplification cannot be below 1.0")
        if gc_sensitive_device:
            return WritePatternAdvice(
                keep_sequentializing=True,
                device_gain=self.device_gain,
                in_place_advantage=0.0,
                rationale=("the device's GC punishes sustained random writes; keep "
                           "the log-structured write path"),
            )
        # Application-visible throughput: sequentialized path pays the layer's
        # write amplification out of the sequential bandwidth; the in-place
        # path uses random bandwidth directly.
        sequential_effective = self.sequential_gbps / sequentialization_write_amplification
        if sequential_effective <= 0:
            advantage = float("inf")
        else:
            advantage = self.random_gbps / sequential_effective
        keep = advantage < min_advantage
        if keep:
            rationale = (f"in-place writes would only be {advantage:.2f}x the "
                         "sequentialized path; not worth restructuring")
        else:
            rationale = (f"in-place random writes deliver {advantage:.2f}x the "
                         f"effective throughput of the sequentialized path "
                         f"(device gain {self.device_gain:.2f}x, layer WA "
                         f"{sequentialization_write_amplification:.2f})")
        return WritePatternAdvice(
            keep_sequentializing=keep,
            device_gain=self.device_gain,
            in_place_advantage=advantage,
            rationale=rationale,
        )

    def proactive_random_write_benefit(self,
                                       fraction_convertible: float = 0.5) -> float:
        """Estimated speed-up from proactively issuing random writes in
        sequential-write-based software (the second half of Implication 3).

        ``fraction_convertible`` is the fraction of the write stream that can
        be redirected to random placement without correctness impact.
        """
        if not 0 <= fraction_convertible <= 1:
            raise ValueError("fraction_convertible must be in [0, 1]")
        gain = self.device_gain
        blended = (1 - fraction_convertible) + fraction_convertible * gain
        return blended
