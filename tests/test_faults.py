"""Tests for the fault-injection subsystem (repro.cluster.faults).

Covers the event/policy model, the FaultInjector device proxy, fleet-level
failure semantics (shedding, re-replication storms, spare promotion, drains,
repair), the sweep/scenario plumbing, and the CLI entry point.  The
layout-independence property (faulted fleets bit-identical across shard
counts) is gated in tests/test_cluster.py next to the fault-free identity
tests.
"""

import json

import pytest

from repro.cluster import (
    FaultEvent,
    FaultInjector,
    FaultPolicy,
    FleetTopology,
    edge,
    fault,
    fleet,
    group,
    run_fleet_serial,
    tenant,
)
from repro.cluster.faults import (
    canonical_fault_spec,
    fault_epoch,
    parse_fault_spec,
    repair_epoch,
    schedule_cell_faults,
)
from repro.host.io import IOKind, IORequest
from repro.sim import Simulator

MINI_CAPACITY = 1 << 24


def faulty_fleet(faults, policy=None, **changes) -> FleetTopology:
    """A small LOOP fleet with a replication edge and a cold spare tier."""
    topology = fleet(
        "faulty-under-test",
        groups=[
            group("web", "LOOP", 3, capacity_bytes=MINI_CAPACITY),
            group("db", "LOOP", 2, capacity_bytes=MINI_CAPACITY),
            group("mirror", "LOOP", 2, capacity_bytes=MINI_CAPACITY),
            group("spare", "LOOP", 1, capacity_bytes=MINI_CAPACITY,
                  preload=False),
        ],
        tenants=[
            tenant("frontend", "web", pattern="randread", io_size=4096,
                   queue_depth=2, io_count=30),
            tenant("oltp", "db", pattern="randwrite", io_size=8192,
                   queue_depth=2, io_count=40),
        ],
        edges=[edge("db", "mirror", replication_factor=2)],
        faults=faults,
        fault_policy=policy or FaultPolicy(rebuild_chunk_bytes=16 * 4096,
                                           rebuild_chunks_per_epoch=2,
                                           shed_penalty_us=50.0),
        epoch_us=100.0,
        seed=5,
    )
    return topology.scaled(**changes) if changes else topology


def strip_runtime(payload: dict) -> dict:
    return {key: value for key, value in payload.items() if key != "runtime"}


# ---------------------------------------------------------------------------
# Event / policy model
# ---------------------------------------------------------------------------

def test_fault_event_validation():
    with pytest.raises(ValueError):  # unknown kind
        FaultEvent(kind="explode", group="db", at_us=1.0)
    with pytest.raises(ValueError):  # negative time
        FaultEvent(kind="fail", group="db", at_us=-1.0)
    with pytest.raises(ValueError):  # non-positive repair
        FaultEvent(kind="fail", group="db", at_us=1.0, repair_after_us=0.0)
    with pytest.raises(ValueError):  # negative device index
        FaultEvent(kind="fail", group="db", at_us=1.0, device=-1)
    with pytest.raises(ValueError):  # spare promotion only applies to fails
        FaultEvent(kind="drain", group="db", at_us=1.0, spare="spare")


def test_fault_policy_validation():
    with pytest.raises(ValueError):
        FaultPolicy(rebuild_chunk_bytes=1000)  # not a 4 KiB multiple
    with pytest.raises(ValueError):
        FaultPolicy(rebuild_chunks_per_epoch=0)
    with pytest.raises(ValueError):
        FaultPolicy(shed_penalty_us=-1.0)
    with pytest.raises(ValueError):
        FaultPolicy(max_inflight=0)


def test_topology_rejects_inconsistent_fault_schedules():
    with pytest.raises(ValueError):  # unknown group
        faulty_fleet([fault("fail", "nope", at_us=1.0)])
    with pytest.raises(ValueError):  # device index out of range
        faulty_fleet([fault("fail", "db", at_us=1.0, device=2)])
    with pytest.raises(ValueError):  # unknown spare group
        faulty_fleet([fault("fail", "db", at_us=1.0, spare="nope")])
    with pytest.raises(ValueError):  # spare must differ from failed group
        faulty_fleet([fault("fail", "db", at_us=1.0, spare="db")])


def test_fault_spec_roundtrip_and_parse_forms():
    events = (fault("fail", "db", at_us=500.0, device=1,
                    repair_after_us=1000.0, spare="spare"),
              fault("drain", "web", at_us=200.0))
    policy = FaultPolicy(rebuild_chunks_per_epoch=3, max_inflight=8)
    spec = canonical_fault_spec(events, policy)
    parsed_events, parsed_policy = parse_fault_spec(spec)
    assert parsed_events == events
    assert parsed_policy == policy
    # A bare list of event payloads gets the default policy.
    bare_events, bare_policy = parse_fault_spec(
        json.dumps([event.to_payload() for event in events]))
    assert bare_events == events
    assert bare_policy == FaultPolicy()
    # The topology embeds both and round-trips them.
    topology = faulty_fleet(events, policy)
    clone = FleetTopology.from_json(topology.canonical())
    assert clone.faults == events
    assert clone.fault_policy == policy
    assert clone.canonical() == topology.canonical()


def test_fault_and_repair_epochs_quantize_up_and_stay_ordered():
    assert fault_epoch(0.0, 100.0) == 0
    assert fault_epoch(1.0, 100.0) == 1
    assert fault_epoch(100.0, 100.0) == 1
    assert fault_epoch(100.1, 100.0) == 2
    # Repair lands strictly after the failure barrier, however short the
    # requested outage.
    blip = fault("fail", "db", at_us=100.0, repair_after_us=0.001)
    assert repair_epoch(blip, 100.0) > fault_epoch(blip.at_us, 100.0)
    forever = fault("fail", "db", at_us=100.0)
    assert repair_epoch(forever, 100.0) is None


# ---------------------------------------------------------------------------
# FaultInjector proxy
# ---------------------------------------------------------------------------

def _loop_device(sim):
    from repro.devices import create_device
    return create_device(sim, "LOOP", capacity_bytes=MINI_CAPACITY)


def test_injector_delegates_and_sheds_when_offline():
    sim = Simulator()
    proxy = FaultInjector(sim, _loop_device(sim),
                          FaultPolicy(shed_penalty_us=75.0))
    assert proxy.capacity_bytes == MINI_CAPACITY
    assert proxy.logical_block_size > 0
    results = []

    def proc():
        results.append((yield proxy.write(0, 4096)))
        proxy.offline = True
        results.append((yield proxy.read(0, 4096)))
        proxy.offline = False
        results.append((yield proxy.write(4096, 4096)))

    sim.process(proc())
    sim.run()
    served, shed, again = results
    assert not served.shed and served.latency > 0
    assert shed.shed
    assert shed.latency == pytest.approx(75.0)
    assert proxy.shed_ios == 1 and proxy.shed_bytes == 4096
    assert proxy.describe()["offline"] is False
    assert not again.shed
    assert proxy.shed_ios == 1  # repair stopped the shedding


def test_injector_admission_cap_sheds_overload():
    sim = Simulator()
    proxy = FaultInjector(sim, _loop_device(sim),
                          FaultPolicy(max_inflight=2, shed_penalty_us=10.0))
    results = []

    def flood():
        events = [proxy.submit(IORequest(IOKind.WRITE, i * 4096, 4096))
                  for i in range(8)]
        for event in events:
            results.append((yield event))

    sim.process(flood())
    sim.run()
    shed = [request for request in results if request.shed]
    assert proxy.shed_ios == len(shed) > 0
    assert len(results) - len(shed) >= 2  # the in-flight window was served


def test_schedule_cell_faults_flips_at_exact_times():
    sim = Simulator()
    device = _loop_device(sim)
    [proxy] = schedule_cell_faults(
        sim, [device],
        [fault("fail", "cell", at_us=50.0, repair_after_us=100.0)],
        FaultPolicy(shed_penalty_us=5.0))
    results = []

    def probe():
        results.append((yield proxy.submit(IORequest(IOKind.READ, 0, 4096))))
        yield sim.timeout(60.0 - sim.now)
        results.append((yield proxy.submit(IORequest(IOKind.READ, 0, 4096))))
        yield sim.timeout(200.0 - sim.now)
        results.append((yield proxy.submit(IORequest(IOKind.READ, 0, 4096))))

    sim.process(probe())
    sim.run()
    first, second, third = results
    assert not first.shed and not third.shed
    assert second.shed  # inside the [50, 150) outage


# ---------------------------------------------------------------------------
# Fleet-level failure semantics
# ---------------------------------------------------------------------------

def test_failed_device_sheds_and_rebuilds_onto_spare():
    topology = faulty_fleet([fault("fail", "db", at_us=50.0, device=0,
                                   spare="spare")])
    result = run_fleet_serial(topology)
    faults = result["faults"]
    assert faults["shed_ios"] > 0
    assert faults["degraded_us"] > 0
    # The storm wrote the lost bytes onto the promoted spare and read them
    # back from the surviving replica holders (the mirror tier).
    assert result["groups"]["spare"]["rebuild_writes"] > 0
    assert result["groups"]["spare"]["rebuild_bytes"] == \
        faults["rebuild_bytes"] > 0
    assert result["groups"]["mirror"]["rebuild_reads"] == \
        result["groups"]["spare"]["rebuild_writes"]
    assert faults["rebuild_gbps"] > 0
    # The window event names the failed device.
    [window] = faults["events"]
    assert window["kind"] == "fail" and window["group"] == "db"
    assert window["device"] == 0 and window["spare"] == "spare"
    # A fail with rebuild traffic closes the window at the last rebuild
    # delivery even without a repair event.
    assert window["end_us"] is not None
    assert window["rebuild_chunks"] > 0
    # Degraded vs steady tail split is reported per tenant and fleet-wide.
    assert faults["during_rebuild"]["ios"] + faults["steady"]["ios"] == \
        result["fleet"]["ios_completed"]
    assert "faults" in result["tenants"]["oltp"]


def test_rebuild_without_spare_targets_surviving_peers():
    topology = faulty_fleet([fault("fail", "db", at_us=50.0, device=1)])
    result = run_fleet_serial(topology)
    # The surviving db device absorbs the whole storm.
    assert result["groups"]["db"]["rebuild_writes"] > 0
    assert result["groups"]["spare"]["rebuild_writes"] == 0


def test_drain_sheds_but_never_rebuilds():
    topology = faulty_fleet([fault("drain", "db", at_us=50.0, device=0,
                                   repair_after_us=300.0)])
    result = run_fleet_serial(topology)
    faults = result["faults"]
    assert faults["rebuild_writes"] == 0 and faults["rebuild_bytes"] == 0
    assert faults["shed_ios"] > 0
    [window] = faults["events"]
    assert window["kind"] == "drain"
    assert window["end_us"] is not None  # bounded by the repair


def test_repair_restores_service():
    """After the repair barrier the device serves again: a long run sheds
    only inside the outage window."""
    down = faulty_fleet([fault("fail", "db", at_us=50.0, device=0)])
    blip = faulty_fleet([fault("fail", "db", at_us=50.0, device=0,
                               repair_after_us=100.0)])
    shed_down = run_fleet_serial(down)["faults"]["shed_ios"]
    shed_blip = run_fleet_serial(blip)["faults"]["shed_ios"]
    assert 0 < shed_blip < shed_down


def test_shed_writes_do_not_replicate():
    """A write refused by an offline device never reached the media, so it
    must not fan out replica copies."""
    clean = faulty_fleet([])
    faulted = faulty_fleet([fault("fail", "db", at_us=50.0, device=0)])
    clean_replicas = run_fleet_serial(clean)["groups"]["mirror"]
    faulted_result = run_fleet_serial(faulted)
    faulted_replicas = faulted_result["groups"]["mirror"]
    shed = faulted_result["faults"]["shed_ios"]
    assert shed > 0
    assert faulted_replicas["replica_writes"] == \
        clean_replicas["replica_writes"] - 2 * shed  # factor-2 edge


def test_fault_free_topology_reports_no_fault_sections():
    result = run_fleet_serial(faulty_fleet([]))
    assert "faults" not in result
    assert "faults" not in result["tenants"]["oltp"]
    assert "rebuild_writes" not in result["groups"]["db"]


def test_faulted_fleet_cache_key_and_sweep_merge():
    from repro.experiments.sweep import CellSpec, run_cell

    topology = faulty_fleet([])
    spec = canonical_fault_spec(
        [fault("fail", "db", at_us=50.0, device=0, spare="spare")],
        FaultPolicy(rebuild_chunk_bytes=16 * 4096))
    base = CellSpec(device="fleet", fleet=topology.canonical())
    faulted = CellSpec(device="fleet", fleet=topology.canonical(),
                       faults=spec)
    # A fault schedule is different physics: it must enter the cache key.
    assert base.cache_key() != faulted.cache_key()
    metrics = run_cell(faulted)
    assert metrics["fleet"]["faults"]["shed_ios"] > 0
    # The merged topology matches declaring the faults inline.
    events, policy = parse_fault_spec(spec)
    inline = run_cell(CellSpec(
        device="fleet",
        fleet=topology.scaled(faults=events, fault_policy=policy).canonical()))
    assert metrics == inline


# ---------------------------------------------------------------------------
# Scenario and CLI plumbing
# ---------------------------------------------------------------------------

def test_fault_policy_and_device_param_fleet_axes():
    from repro.experiments.scenarios import scenario

    spec = scenario(
        "fault-axes-under-test", "d", devices=("fleet",),
        fleet=faulty_fleet([fault("fail", "db", at_us=300.0, device=0)]),
        grid={"fleet.fault_policy.rebuild_chunks_per_epoch": (1, 4),
              "fleet.db.device_params.service_time_us": (5.0, 20.0)})
    cells = spec.cells()
    assert len(cells) == 4
    paces = sorted(
        {json.loads(cell.fleet)["fault_policy"]["rebuild_chunks_per_epoch"]
         for cell in cells})
    assert paces == [1, 4]
    db_group = json.loads(cells[0].fleet)["groups"][1]
    assert ["service_time_us", 5.0] in db_group["device_params"]
    # Unknown policy fields fail at expansion time, not in a worker.
    with pytest.raises(ValueError):
        scenario("x", "d", devices=("fleet",), fleet=faulty_fleet([]),
                 grid={"fleet.fault_policy.nope": (1,)}).cells()


def test_registered_fault_scenarios_are_well_formed():
    from repro.experiments.scenarios import get_scenario

    for name in ("failover-storm", "gc-cliff"):
        spec = get_scenario(name)
        cells = spec.cells()
        assert cells, name
        for cell in cells:
            topology = FleetTopology.from_json(cell.fleet)
            assert topology.faults, name
    storm = FleetTopology.from_json(
        get_scenario("failover-storm").cells()[0].fleet)
    assert any(event.spare for event in storm.faults)


def test_ssd_op_ratio_override_changes_spare_geometry():
    from repro.devices import create_device
    from repro.ssd.config import samsung_970pro_profile

    lean = samsung_970pro_profile(96 * 1024 * 1024, op_ratio=0.07)
    fat = samsung_970pro_profile(96 * 1024 * 1024, op_ratio=0.25)
    assert fat.geometry.blocks_per_plane > lean.geometry.blocks_per_plane
    assert lean.capacity_bytes == fat.capacity_bytes
    with pytest.raises(ValueError):
        samsung_970pro_profile(op_ratio=1.5)
    sim = Simulator()
    device = create_device(sim, "SSD", capacity_bytes=96 * 1024 * 1024,
                           op_ratio=0.25)
    assert device.capacity_bytes == 96 * 1024 * 1024


def test_cli_fleet_faults_flag(tmp_path, capsys):
    from repro.experiments.cli import main as cli_main
    from repro.experiments.scenarios import register, scenario

    register(scenario("cli-faults-under-test", "d", devices=("fleet",),
                      fleet=faulty_fleet([])), replace=True)
    spec_path = tmp_path / "faults.json"
    spec_path.write_text(canonical_fault_spec(
        [fault("fail", "db", at_us=50.0, device=0, spare="spare")],
        FaultPolicy(shed_penalty_us=50.0)))
    out = tmp_path / "report.json"
    assert cli_main(["fleet", "cli-faults-under-test", "--serial",
                     "--no-cache", "--faults", f"@{spec_path}",
                     "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "faults:" in printed and "p99 during rebuild" in printed
    [report] = json.loads(out.read_text())
    assert report["result"]["faults"]["shed_ios"] > 0
    # Malformed schedules fail cleanly with exit code 2.
    assert cli_main(["fleet", "cli-faults-under-test", "--serial",
                     "--no-cache", "--faults", "{not json"]) == 2
    assert cli_main(["fleet", "cli-faults-under-test", "--serial",
                     "--no-cache",
                     "--faults", '[{"kind": "bad", "group": "db", '
                                 '"at_us": 1.0}]']) == 2
