"""Tests for the device protocol, the factory registry, and the loopback."""

import pytest

from repro.devices import (
    Device,
    LoopbackDevice,
    create_device,
    device_names,
    register_device,
)
from repro.devices.registry import UnknownDeviceError
from repro.ebs import EssdDevice
from repro.host import SubmissionQueue
from repro.host.io import MiB
from repro.sim import Simulator
from repro.ssd import SsdDevice
from repro.workload.fio import FioJob, run_job


def test_builtin_catalog_registers_paper_devices_and_loopback():
    assert {"SSD", "ESSD-1", "ESSD-2", "LOOP"} <= set(device_names())


def test_every_builtin_device_satisfies_the_protocol():
    sim = Simulator()
    for device_name in ("SSD", "ESSD-1", "ESSD-2", "LOOP"):
        device = create_device(sim, device_name, capacity_bytes=64 * MiB)
        assert isinstance(device, Device), device_name
        summary = device.describe()
        assert summary["name"] == device.name
        assert device.capacity_bytes == 64 * MiB
        device.preload()  # must never raise, even where it is a no-op


def test_create_device_builds_the_right_models():
    sim = Simulator()
    assert isinstance(create_device(sim, "SSD", capacity_bytes=64 * MiB), SsdDevice)
    assert isinstance(create_device(sim, "ESSD-1", capacity_bytes=64 * MiB), EssdDevice)
    assert isinstance(create_device(sim, "LOOP"), LoopbackDevice)


def test_create_device_name_override_allows_same_family_twice():
    sim = Simulator()
    a = create_device(sim, "SSD", capacity_bytes=64 * MiB, name="ssd-a")
    b = create_device(sim, "SSD", capacity_bytes=64 * MiB, name="ssd-b")
    assert (a.name, b.name) == ("ssd-a", "ssd-b")


def test_unknown_device_error_is_both_value_and_key_error():
    sim = Simulator()
    with pytest.raises(ValueError):
        create_device(sim, "nope")
    with pytest.raises(KeyError):
        create_device(sim, "nope")
    with pytest.raises(UnknownDeviceError, match="known:"):
        create_device(sim, "nope")


def test_register_device_rejects_duplicates_unless_replace():
    with pytest.raises(ValueError):
        @register_device("SSD")
        def _dup(sim, capacity_bytes=None, name=None):  # pragma: no cover
            raise AssertionError

    @register_device("TEST-DEV", replace=True)
    def _build(sim, capacity_bytes=None, name=None):
        return LoopbackDevice(sim, capacity_bytes or MiB, name=name or "test-dev")

    try:
        device = create_device(Simulator(), "TEST-DEV")
        assert device.name == "test-dev"
    finally:
        from repro.devices.registry import _FACTORIES
        _FACTORIES.pop("TEST-DEV", None)


def test_loopback_constant_latency_and_stats():
    sim = Simulator()
    device = LoopbackDevice(sim, capacity_bytes=4 * MiB, service_time_us=25.0)
    completed = []

    def proc():
        request = yield device.read(0, 4096)
        completed.append(request.latency)
        request = yield device.write(8192, 8192)
        completed.append(request.latency)

    sim.process(proc())
    sim.run()
    assert completed == [25.0, 25.0]
    assert device.stats.reads_completed == 1
    assert device.stats.writes_completed == 1
    assert device.stats.bytes_written == 8192


def test_loopback_service_slots_serialize_requests():
    sim = Simulator()
    device = LoopbackDevice(sim, capacity_bytes=4 * MiB, service_time_us=10.0,
                            service_slots=1)
    result = run_job(sim, device, FioJob(pattern="randread", io_count=4,
                                         queue_depth=4, region_bytes=MiB))
    # One slot: the four requests serialize, 10us each.
    assert result.finished_us == pytest.approx(40.0)


def test_fio_runs_against_any_protocol_device():
    """run_job is typed against the protocol: a loopback behaves like any
    other device through the whole workload layer."""
    sim = Simulator()
    device = create_device(sim, "LOOP", capacity_bytes=8 * MiB)
    result = run_job(sim, device, FioJob(pattern="write", io_size=4096,
                                         io_count=16, queue_depth=2))
    assert result.ios_completed == 16
    assert result.latency.summary().mean_us == pytest.approx(10.0)


def test_submission_queue_accepts_protocol_device():
    sim = Simulator()
    device = create_device(sim, "LOOP", capacity_bytes=8 * MiB)
    queue = SubmissionQueue(sim, device, depth=2)
    done = []

    def proc():
        from repro.host.io import IORequest
        completed = yield sim.process(queue.submit(IORequest.read(0, 4096)))
        done.append(completed.latency)

    sim.process(proc())
    sim.run()
    assert done == [10.0]
    assert queue.completed == 1
