"""Figure 4: random-write throughput and its gain over sequential writes.

For each device, I/O size, and queue depth, the experiment measures the
throughput of random writes and of sequential writes and reports the
random-over-sequential gain.  The paper's headline numbers are gains of up to
1.52x (ESSD-1) and 2.79x (ESSD-2) while the local SSD shows no meaningful
difference before GC kicks in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.experiments.common import DeviceKind, ExperimentScale, format_table
from repro.experiments.scenarios import register, scenario
from repro.experiments.sweep import CellSpec, SweepRunner
from repro.host.io import KiB
from repro.metrics.stats import throughput_gain

#: Full paper grid.
PAPER_IO_SIZES = (4 * KiB, 8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB)
PAPER_QUEUE_DEPTHS = (1, 2, 4, 8, 16, 32)
#: Reduced default grid.
DEFAULT_IO_SIZES = (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB)
DEFAULT_QUEUE_DEPTHS = (1, 8, 32)


@dataclass(frozen=True)
class ThroughputCell:
    """Random and sequential write throughput at one (size, depth) point."""

    device: DeviceKind
    io_size: int
    queue_depth: int
    random_gbps: float
    sequential_gbps: float

    @property
    def gain(self) -> float:
        return throughput_gain(self.random_gbps, self.sequential_gbps)


@dataclass
class Figure4Result:
    """The full random-vs-sequential write grid."""

    cells: list[ThroughputCell] = field(default_factory=list)

    def cell(self, device: DeviceKind, io_size: int, queue_depth: int) -> ThroughputCell:
        for cell in self.cells:
            if (cell.device is device and cell.io_size == io_size
                    and cell.queue_depth == queue_depth):
                return cell
        raise KeyError((device, io_size, queue_depth))

    def max_gain(self, device: DeviceKind) -> float:
        gains = [cell.gain for cell in self.cells if cell.device is device]
        return max(gains) if gains else 0.0

    def gain_grid(self, device: DeviceKind) -> dict[tuple[int, int], tuple[float, float]]:
        """{(io_size, queue_depth): (random_gbps, sequential_gbps)} for advisors."""
        return {(cell.io_size, cell.queue_depth): (cell.random_gbps, cell.sequential_gbps)
                for cell in self.cells if cell.device is device}

    def render(self, device: DeviceKind) -> str:
        headers = ["IO size", "QD", "Random GB/s", "Sequential GB/s", "Gain"]
        rows = []
        for cell in self.cells:
            if cell.device is not device:
                continue
            rows.append([
                f"{cell.io_size // KiB}KiB",
                str(cell.queue_depth),
                f"{cell.random_gbps:.2f}",
                f"{cell.sequential_gbps:.2f}",
                f"{cell.gain:.2f}x",
            ])
        return (f"Random vs sequential write throughput of {device.value} (Figure 4)\n"
                + format_table(headers, rows))


def figure4_cells(scale: Optional[ExperimentScale] = None,
                  io_sizes: Sequence[int] = DEFAULT_IO_SIZES,
                  queue_depths: Sequence[int] = DEFAULT_QUEUE_DEPTHS,
                  ios_per_cell: int = 800,
                  devices: Sequence[DeviceKind] = (DeviceKind.SSD, DeviceKind.ESSD1,
                                                   DeviceKind.ESSD2)) -> list[CellSpec]:
    """The Figure 4 grid: one cell per (device, size, depth, pattern)."""
    scale = scale or ExperimentScale.default()
    cells = []
    for device in devices:
        for io_size in io_sizes:
            for queue_depth in queue_depths:
                for pattern in ("randwrite", "write"):
                    cells.append(CellSpec(
                        device=device.value,
                        pattern=pattern,
                        io_size=io_size,
                        queue_depth=queue_depth,
                        io_count=max(ios_per_cell, queue_depth * 30),
                        ramp_ios=queue_depth,
                        seed=43,
                        preload=False,
                        ssd_capacity_bytes=scale.ssd_capacity_bytes,
                        essd_capacity_bytes=scale.essd_capacity_bytes,
                        labels=(("device", device.value), ("io_size", io_size),
                                ("pattern", pattern), ("queue_depth", queue_depth)),
                    ))
    return cells


def run_figure4(scale: Optional[ExperimentScale] = None,
                io_sizes: Sequence[int] = DEFAULT_IO_SIZES,
                queue_depths: Sequence[int] = DEFAULT_QUEUE_DEPTHS,
                ios_per_cell: int = 800,
                devices: Sequence[DeviceKind] = (DeviceKind.SSD, DeviceKind.ESSD1,
                                                 DeviceKind.ESSD2),
                runner: Optional[SweepRunner] = None) -> Figure4Result:
    """Measure the Figure 4 grid through the sweep runner."""
    cells = figure4_cells(scale, io_sizes, queue_depths, ios_per_cell, devices)
    sweep = (runner or SweepRunner()).run_cells("figure4", cells)
    result = Figure4Result()
    throughputs: dict[tuple, dict[str, float]] = {}
    for outcome in sweep.outcomes:
        labels = outcome.params
        key = (labels["device"], labels["io_size"], labels["queue_depth"])
        throughputs.setdefault(key, {})[labels["pattern"]] = \
            outcome.metrics["throughput_gbps"]
    for (device, io_size, queue_depth), pair in throughputs.items():
        result.cells.append(ThroughputCell(
            device=DeviceKind(device),
            io_size=io_size,
            queue_depth=queue_depth,
            random_gbps=pair["randwrite"],
            sequential_gbps=pair["write"],
        ))
    return result


register(scenario(
    "figure4",
    "Paper Figure 4: random vs sequential write throughput and gain",
    devices=("SSD", "ESSD-1", "ESSD-2"),
    tags=("paper", "throughput"),
    cell_builder=lambda: figure4_cells(
        ExperimentScale.small(), io_sizes=(16 * KiB, 64 * KiB),
        queue_depths=(8, 32), ios_per_cell=300),
))
