"""Flash block allocation: per-die free lists and write frontiers.

The allocation unit is a *die superblock*: the same block index across all
planes of one die, erased together and filled by multi-plane program
operations.  Two independent write frontiers exist per die -- one for host
writes and one for GC relocation -- which gives the usual hot/cold stream
separation.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.flash.geometry import FlashGeometry


class BlockState(enum.Enum):
    """Lifecycle state of an allocation block."""

    FREE = "free"
    OPEN = "open"
    FULL = "full"


class WriteStream(enum.Enum):
    """Which frontier a write belongs to."""

    HOST = "host"
    GC = "gc"


@dataclass
class OpenBlock:
    """A block currently being filled."""

    block_id: int
    next_slot: int = 0


class BlockAllocator:
    """Tracks block states and hands out slots for program operations."""

    def __init__(self, geometry: FlashGeometry, slots_per_page: int):
        self.geometry = geometry
        self.slots_per_page = slots_per_page
        self.total_dies = geometry.total_dies
        self.blocks_per_die = geometry.blocks_per_plane
        self.total_blocks = self.total_dies * self.blocks_per_die
        self.slots_per_block = (geometry.planes_per_die * geometry.pages_per_block
                                * slots_per_page)
        self.program_unit_slots = geometry.planes_per_die * slots_per_page

        self._free: list[deque[int]] = [deque() for _ in range(self.total_dies)]
        for block_id in range(self.total_blocks):
            self._free[self.die_of_block(block_id)].append(block_id)
        self._state = [BlockState.FREE] * self.total_blocks
        self._open: dict[tuple[int, WriteStream], OpenBlock] = {}
        self._write_cursor = 0
        self.erase_count = [0] * self.total_blocks

    # -- geometry helpers ------------------------------------------------------
    def die_of_block(self, block_id: int) -> int:
        if not 0 <= block_id < self.total_blocks:
            raise ValueError(f"block {block_id} out of range")
        return block_id // self.blocks_per_die

    def first_slot_of_block(self, block_id: int) -> int:
        return block_id * self.slots_per_block

    def block_of_slot(self, psn: int) -> int:
        return psn // self.slots_per_block

    def state_of(self, block_id: int) -> BlockState:
        return self._state[block_id]

    # -- free space accounting ---------------------------------------------------
    def free_blocks(self, die: int) -> int:
        """Number of free (erased, unopened) blocks on ``die``."""
        return len(self._free[die])

    def min_free_blocks(self) -> int:
        """The smallest per-die free-block count (GC trigger input)."""
        return min(len(queue) for queue in self._free)

    def total_free_blocks(self) -> int:
        return sum(len(queue) for queue in self._free)

    def dies_below(self, watermark: int) -> list[int]:
        """Dies whose free-block count is below ``watermark``."""
        return [die for die, queue in enumerate(self._free) if len(queue) < watermark]

    # -- allocation ----------------------------------------------------------------
    def can_allocate(self, die: int, stream: WriteStream, reserve: int) -> bool:
        """Whether ``die`` can accept a program for ``stream`` without dipping
        into the GC reserve (host writes honour ``reserve``; GC ignores it)."""
        open_block = self._open.get((die, stream))
        if open_block is not None and open_block.next_slot < self.slots_per_block:
            return True
        minimum = 0 if stream is WriteStream.GC else reserve
        return len(self._free[die]) > minimum

    def pick_die(self, stream: WriteStream, reserve: int) -> Optional[int]:
        """Round-robin die selection among dies that can accept a program."""
        for step in range(self.total_dies):
            die = (self._write_cursor + step) % self.total_dies
            if self.can_allocate(die, stream, reserve):
                self._write_cursor = (die + 1) % self.total_dies
                return die
        return None

    def allocate_slots(self, die: int, count: int, stream: WriteStream,
                       reserve: int) -> list[int]:
        """Allocate up to ``count`` consecutive slots on ``die``.

        Returns the physical slot numbers (possibly fewer than ``count`` if
        the open block runs out; the caller simply issues another program for
        the remainder).  Raises ``RuntimeError`` if the die has no usable
        block -- callers must check :meth:`can_allocate` first.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        key = (die, stream)
        open_block = self._open.get(key)
        if open_block is None or open_block.next_slot >= self.slots_per_block:
            if open_block is not None:
                self._state[open_block.block_id] = BlockState.FULL
            open_block = self._open_new_block(die, stream, reserve)
            self._open[key] = open_block
        available = self.slots_per_block - open_block.next_slot
        granted = min(count, available)
        base = self.first_slot_of_block(open_block.block_id) + open_block.next_slot
        open_block.next_slot += granted
        if open_block.next_slot >= self.slots_per_block:
            self._state[open_block.block_id] = BlockState.FULL
        return list(range(base, base + granted))

    def _open_new_block(self, die: int, stream: WriteStream, reserve: int) -> OpenBlock:
        minimum = 0 if stream is WriteStream.GC else reserve
        if len(self._free[die]) <= minimum:
            raise RuntimeError(
                f"die {die} has no free block available for {stream.value} writes")
        block_id = self._free[die].popleft()
        self._state[block_id] = BlockState.OPEN
        return OpenBlock(block_id=block_id, next_slot=0)

    # -- GC support ------------------------------------------------------------------
    def is_open(self, block_id: int) -> bool:
        return self._state[block_id] is BlockState.OPEN

    def gc_candidates(self, die: int) -> list[int]:
        """Blocks on ``die`` that are FULL (eligible GC victims)."""
        start = die * self.blocks_per_die
        return [block_id for block_id in range(start, start + self.blocks_per_die)
                if self._state[block_id] is BlockState.FULL]

    def release_block(self, block_id: int) -> None:
        """Return an erased block to its die's free list."""
        if self._state[block_id] is BlockState.FREE:
            raise ValueError(f"block {block_id} is already free")
        if self._state[block_id] is BlockState.OPEN:
            raise ValueError(f"block {block_id} is still open")
        self._state[block_id] = BlockState.FREE
        self.erase_count[block_id] += 1
        self._free[self.die_of_block(block_id)].append(block_id)
