"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.  An
event starts *untriggered*; calling :meth:`Event.succeed` (or
:meth:`Event.fail`) schedules it on the simulator's event heap, and once the
simulator pops it the event becomes *processed* and all registered callbacks
run.  A :class:`Process` wraps a Python generator: the generator yields
events, and the process resumes each time the yielded event is processed.

Object pooling (fast-path kernel)
---------------------------------
With ``Simulator(fast_path=True)`` the kernel recycles kernel-created
:class:`Timeout` and grant :class:`Event` objects whose only consumers were
the processes that yielded them.  The discipline this imposes on user code:
an event obtained from ``sim.timeout(...)`` or ``resource.request()`` must
not be inspected (``.value``, ``.processed``) after the process that yielded
it has resumed past a *different* event.  Yielding inline -- by far the
common pattern -- is always safe, as is passing such events to
``AllOf``/``AnyOf`` (condition-held events are never recycled).

:class:`Process` objects themselves are pooled too, but only the ones
created through :func:`spawn_process` (the ``device.submit`` fast path):
those are marked pool-eligible at birth and recycled once their completion
has been consumed by the submitting worker.  Processes created with
``sim.process(...)`` are never recycled -- user code may hold them, join
them in conditions, or interrupt them long after completion.  The same
inspect-after-resume rule applies to submission events: read the request
object (which the completion event returns), not the event, once the
worker has moved on.
"""

from __future__ import annotations

from types import GeneratorType as _GENERATOR_TYPE
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

#: Priority used for ordinary events (re-exported by repro.sim.engine).
PRIORITY_NORMAL = 1
#: Priority used for "urgent" bookkeeping events processed before normal ones.
PRIORITY_URGENT = 0


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (double trigger, etc.)."""


class Interrupt(Exception):
    """Raised inside a process that has been interrupted by another process.

    The ``cause`` attribute carries the object passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes may wait on.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed",
                 "_defused", "_pool_ok", "_seq")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered: bool = False
        self._processed: bool = False
        self._defused: bool = False
        #: Set only by the kernel for events it created itself (bootstrap,
        #: resource grants); such events may be recycled after processing.
        self._pool_ok: bool = False
        #: Scheduling sequence number (set when queued on the immediate deque).
        self._seq: int = 0

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled (succeeded or failed)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the simulator has already run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded, ``False`` if it failed."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event succeeded with (or the exception it failed with)."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        # Zero-delay success is the kernel's hottest operation (resource
        # grants, token grants, relays); schedule it inline on the fast
        # path.  The legacy kernel keeps the pre-refactor _schedule chain.
        sim = self.sim
        if delay == 0.0 and sim.fast_path:
            sim._sequence = seq = sim._sequence + 1
            self._seq = seq
            sim._immediate.append(self)
        else:
            sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception`` after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator does not re-raise it."""
        self._defused = True

    # -- internal ---------------------------------------------------------
    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process itself is an event: it triggers when the generator returns
    (successfully, carrying the return value) or raises (failed, carrying the
    exception).  Other processes can therefore ``yield`` a process to join it.
    """

    __slots__ = ("generator", "_waiting_on", "_resume_bound")

    def __init__(self, sim: "Simulator", generator: Generator[Event, Any, Any]):
        # Inline of Event.__init__ (one process is created per device
        # submission; the super() call is measurable on the hot path).
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False
        self._pool_ok = False
        self._seq = 0
        if type(generator) is not _GENERATOR_TYPE and \
                not hasattr(generator, "send"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        # One bound method reused for every wait this process ever registers
        # (a fresh ``self._resume`` would allocate per yield).
        self._resume_bound = self._resume
        # Kick off the process at the current simulation time.  On the fast
        # path the bootstrap is scheduled inline (pooled event + direct deque
        # append) -- process creation is the first step of every device
        # submission, so the ``succeed()`` bookkeeping is worth skipping.
        # The scheduling order is identical to the generic path.
        if sim.fast_path:
            pool = sim._event_pool
            if pool:
                bootstrap = pool.pop()
                bootstrap._value = None
                bootstrap._triggered = True
                bootstrap._processed = False
                bootstrap._defused = False
                # _ok is still True: only successful events are pooled.
            else:
                bootstrap = Event(sim)
                bootstrap._pool_ok = True
                bootstrap._triggered = True
            bootstrap.callbacks.append(self._resume_bound)
            sim._sequence = seq = sim._sequence + 1
            bootstrap._seq = seq
            sim._immediate.append(bootstrap)
        else:
            bootstrap = sim._fresh_event()
            bootstrap.callbacks.append(self._resume_bound)
            bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        waiting_on = self._waiting_on
        if waiting_on is not None:
            try:
                waiting_on.callbacks.remove(self._resume_bound)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._waiting_on = None
        interrupt_event = Event(self.sim)
        interrupt_event.callbacks.append(self._resume_with_interrupt(cause))
        interrupt_event.succeed()

    def _resume_with_interrupt(self, cause: Any) -> Callable[[Event], None]:
        def callback(_event: Event) -> None:
            self._step(throw=Interrupt(cause))

        return callback

    def _resume(self, event: Event) -> None:
        # The kernel's hottest callback: on the fast path this is an inline
        # of _step(send/throw) minus two frames.  Keep the inline in sync --
        # _step stays the reference implementation (and the legacy kernel's
        # frame-for-frame pre-refactor resumption path).
        sim = self.sim
        if not sim.fast_path:
            self._waiting_on = None
            if event.ok:
                self._step(send=event.value)
            else:
                event.defuse()
                self._step(throw=event.value)
            return
        self._waiting_on = None
        if self._triggered:
            return
        sim._active_process = self
        try:
            if event._ok:
                target = self.generator.send(event._value)
            else:
                event._defused = True
                target = self.generator.throw(event._value)
        except StopIteration as stop:
            # Inline of succeed(stop.value): fires once per process, so the
            # completion of every device submission passes through here.
            self._triggered = True
            self._value = stop.value
            sim._sequence = seq = sim._sequence + 1
            self._seq = seq
            sim._immediate.append(self)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate through the event
            self.fail(exc)
            return
        finally:
            sim._active_process = None
        # Inline of _wait_on's hot branch (pending event): one frame less.
        if isinstance(target, Event) and not target._processed:
            self._waiting_on = target
            target.callbacks.append(self._resume_bound)
            return
        self._wait_on(target)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        if self._triggered:
            return
        self.sim._active_process = self
        try:
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate through the event
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        """Register the process on the event its generator just yielded."""
        if isinstance(target, Event) and not target._processed:
            self._waiting_on = target
            target.callbacks.append(self._resume_bound)
            return
        if not isinstance(target, Event):
            self._step(throw=SimulationError(
                f"process yielded a non-event value: {target!r}"))
            return
        # The event already ran its callbacks; resume immediately with
        # its value on the next simulator step.
        relay = self.sim._fresh_event()
        relay.callbacks.append(self._resume_bound)
        if target.ok:
            relay.succeed(target.value)
        else:
            target.defuse()
            relay.fail(target.value)
            relay.defuse()


def spawn_process(sim: "Simulator", generator: Generator[Event, Any, Any]) -> Process:
    """Pooled :class:`Process` factory for the submission hot path.

    On the fast path the kernel recycles completed submission processes whose
    only waiters were inline ``yield``\\ s (the same discipline as pooled
    grant/timeout events -- see the module docstring); this factory reuses
    them, skipping the per-submission object allocation.  Off the fast path
    it is exactly ``Process(sim, generator)``.
    """
    if sim.fast_path:
        pool = sim._process_pool
        if pool:
            process = pool.pop()
            process._value = None
            process._triggered = False
            process._processed = False
            process._defused = False
            process.generator = generator
            # _ok stays True, _waiting_on is None, _pool_ok stays True, and
            # the callback list was cleared when the kernel pooled it.
            epool = sim._event_pool
            if epool:
                bootstrap = epool.pop()
                bootstrap._value = None
                bootstrap._triggered = True
                bootstrap._processed = False
                bootstrap._defused = False
            else:
                bootstrap = Event(sim)
                bootstrap._pool_ok = True
                bootstrap._triggered = True
            bootstrap.callbacks.append(process._resume_bound)
            sim._sequence = seq = sim._sequence + 1
            bootstrap._seq = seq
            sim._immediate.append(bootstrap)
            return process
        process = Process(sim, generator)
        process._pool_ok = True
        return process
    return Process(sim, generator)


class ConditionValue(dict):
    """The result mapping (event -> value) an :class:`AllOf`/:class:`AnyOf`
    succeeds with.

    A plain ``dict`` subclass: values are snapshotted when the condition
    triggers (so later recycling of constituent events cannot corrupt them)
    while keeping the familiar mapping protocol for callers.
    """

    __slots__ = ()

    def todict(self) -> dict["Event", Any]:
        """A plain-``dict`` copy of the results."""
        return dict(self)


class _Condition(Event):
    """Base class for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if not isinstance(event, Event):
                raise TypeError(f"condition requires events, got {event!r}")
        # One bound-method object is shared by every child subscription, so a
        # wide fan-in does not allocate a callback per child.
        observe = self._observe
        pending = 0
        for event in self.events:
            if not event._processed:
                pending += 1
                event.callbacks.append(observe)
        self._pending = pending
        self._check_initial()

    def _check_initial(self) -> None:
        raise NotImplementedError

    def _observe(self, event: Event) -> None:
        raise NotImplementedError

    def _collect_values(self) -> ConditionValue:
        values = ConditionValue()
        for event in self.events:
            if event._processed and event._ok:
                values[event] = event._value
        return values


class AllOf(_Condition):
    """Triggers when *all* constituent events have triggered successfully."""

    __slots__ = ()

    def _check_initial(self) -> None:
        if not self._triggered and self._pending == 0:
            self.succeed(self._collect_values())

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending <= 0:
            remaining = [e for e in self.events if not e.processed]
            if not remaining:
                self.succeed(self._collect_values())


class AnyOf(_Condition):
    """Triggers as soon as *any* constituent event triggers successfully."""

    __slots__ = ()

    def _check_initial(self) -> None:
        if not self._triggered:
            for event in self.events:
                if event.processed and event.ok:
                    self.succeed(self._collect_values())
                    return
            if not self.events:
                self.succeed({})

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self.succeed(self._collect_values())
