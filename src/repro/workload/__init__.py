"""FIO-like workload generation, trace synthesis, and job execution.

The paper drives its characterization with the FIO benchmark tool; this
package provides the equivalent: declarative job specifications
(:class:`FioJob`), address-pattern generators, an asynchronous closed-loop
runner with a configurable queue depth (:func:`run_job`), and open-loop trace
replay for burst-sensitive experiments (Implication 4).
"""

from repro.workload.fio import FioJob, JobResult, run_job, run_jobs, run_streams
from repro.workload.patterns import (
    AccessPattern,
    MixedPattern,
    RandomPattern,
    SequentialPattern,
    ZipfianPattern,
    make_pattern,
)
from repro.workload.trace import (
    TraceEvent,
    Trace,
    replay_trace,
    synthesize_bursty_trace,
    synthesize_diurnal_trace,
    synthesize_uniform_trace,
)

__all__ = [
    "FioJob",
    "JobResult",
    "run_job",
    "run_jobs",
    "run_streams",
    "AccessPattern",
    "RandomPattern",
    "SequentialPattern",
    "ZipfianPattern",
    "MixedPattern",
    "make_pattern",
    "Trace",
    "TraceEvent",
    "replay_trace",
    "synthesize_bursty_trace",
    "synthesize_diurnal_trace",
    "synthesize_uniform_trace",
]
