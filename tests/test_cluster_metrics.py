"""Edge-case tests for fleet metric merging (repro.cluster.metrics).

The merge layer has to stay total over degenerate measurement payloads:
tenants that never overlap a fault window, devices with a single latency
sample, zero-duration runs that would divide throughput by zero, and
empty recorders.  Every merged payload must serialize with
``json.dumps(..., allow_nan=False)`` -- NaN/inf leaking into reports is a
bug.
"""

import json

from repro.cluster import FaultPolicy, fault, fleet, group, tenant
from repro.cluster.metrics import (
    _SplitAggregate,
    _WindowClassifier,
    fleet_headline,
    merge_shard_payloads,
)

CAPACITY = 1 << 24


def metrics_topology(faults=()):
    return fleet(
        "metrics-under-test",
        groups=[
            group("a", "LOOP", 2, capacity_bytes=CAPACITY),
            group("b", "LOOP", 1, capacity_bytes=CAPACITY),
        ],
        tenants=[tenant("t", "a", pattern="randread", io_size=4096,
                        queue_depth=1, io_count=2)],
        faults=list(faults),
        fault_policy=FaultPolicy(),
        epoch_us=100.0,
        seed=1,
    )


def device_payload(*, ios=0, latency=(), timeline=(), started=0.0,
                   finished=0.0, bytes_read=0, bytes_written=0,
                   completion_times=None):
    payload = {
        "ios_completed": ios,
        "bytes_read": bytes_read,
        "bytes_written": bytes_written,
        "started_us": started,
        "finished_us": finished,
        "latency": list(latency),
        "timeline": [list(event) for event in timeline],
    }
    if completion_times is not None:
        payload["completion_times"] = list(completion_times)
    return payload


def shard_payload(tenants, fault_windows=None, **extra):
    payload = {"shard_id": 0, "scheduled_events": 0, "tenants": tenants,
               "replicas": {}}
    if fault_windows is not None:
        payload.update({"rebuilds": {}, "rebuild_reads": {}, "shed": {},
                        "fault_windows": fault_windows})
    payload.update(extra)
    return payload


def window(start, end, index=0, **extra):
    return {"kind": "fail", "group": "a", "device": 0, "index": index,
            "start_us": start, "end_us": end, "repair_us": None,
            "spare": None, "rebuild_chunks": 0, "rebuild_bytes": 0, **extra}


# ---------------------------------------------------------------------------
# _WindowClassifier
# ---------------------------------------------------------------------------

def test_classifier_merges_overlapping_windows():
    classifier = _WindowClassifier(
        [window(100.0, 300.0), window(200.0, 400.0), window(600.0, 700.0)])
    assert classifier.intervals == [(100.0, 400.0), (600.0, 700.0)]
    assert classifier.degraded(100.0)
    assert classifier.degraded(399.0)
    assert not classifier.degraded(400.0)  # half-open on the right
    assert not classifier.degraded(500.0)
    # Clipped to the observation span: only [150, 400) and [600, 650).
    assert classifier.degraded_us(150.0, 650.0) == 300.0


def test_classifier_open_window_stays_degraded_forever():
    classifier = _WindowClassifier([window(100.0, None)])
    assert classifier.degraded(1e12)
    assert classifier.degraded_us(0.0, 500.0) == 400.0


def test_classifier_without_windows_never_degrades():
    classifier = _WindowClassifier([])
    assert not classifier.degraded(0.0)
    assert classifier.degraded_us(0.0, 1000.0) == 0.0


# ---------------------------------------------------------------------------
# _SplitAggregate
# ---------------------------------------------------------------------------

def test_split_aggregate_of_empty_payload_is_all_zero():
    split = _SplitAggregate(_WindowClassifier([window(0.0, None)]))
    split.add(device_payload())
    payload = split.to_payload(0.0, 0.0)
    for half in (payload["during_rebuild"], payload["steady"]):
        assert half["ios"] == 0 and half["bytes"] == 0
        assert half["throughput_gbps"] == 0.0
        assert half["p99_us"] == 0.0
    json.dumps(payload, allow_nan=False)


def test_split_aggregate_routes_samples_by_completion_time():
    split = _SplitAggregate(_WindowClassifier([window(100.0, 200.0)]))
    split.add(device_payload(
        ios=3, latency=[10.0, 20.0, 30.0], completion_times=[50.0, 150.0, 250.0],
        timeline=[(50.0, 4096), (150.0, 4096), (250.0, 4096)]))
    payload = split.to_payload(100.0, 200.0)
    assert payload["during_rebuild"]["ios"] == 1
    assert payload["during_rebuild"]["p50_us"] == 20.0
    assert payload["during_rebuild"]["bytes"] == 4096
    assert payload["steady"]["ios"] == 2
    assert payload["steady"]["bytes"] == 2 * 4096


# ---------------------------------------------------------------------------
# merge_shard_payloads edge cases
# ---------------------------------------------------------------------------

def test_merge_with_fault_after_tenant_completed_keeps_windows_empty():
    """A fault landing after the workload drained: the during-rebuild
    population is empty but every metric stays finite and serializable."""
    topology = metrics_topology([fault("fail", "a", at_us=100.0, device=0)])
    tenants = {"t": {
        "0": device_payload(ios=1, latency=[10.0], timeline=[(50.0, 4096)],
                            started=40.0, finished=50.0, bytes_read=4096,
                            completion_times=[50.0]),
        "1": device_payload(ios=1, latency=[12.0], timeline=[(52.0, 4096)],
                            started=40.0, finished=52.0, bytes_read=4096,
                            completion_times=[52.0]),
    }}
    merged = merge_shard_payloads(
        topology, [shard_payload(tenants,
                                 fault_windows=[window(100.0, None, index=0)])])
    faults = merged["faults"]
    assert faults["during_rebuild"]["ios"] == 0
    assert faults["during_rebuild"]["throughput_gbps"] == 0.0
    assert faults["steady"]["ios"] == 2
    assert merged["tenants"]["t"]["faults"]["during_rebuild"]["ios"] == 0
    assert faults["degraded_us"] == 0.0  # window starts after the last finish
    assert faults["rebuild_gbps"] == 0.0
    json.dumps(merged, allow_nan=False)


def test_merge_single_sample_recorders_report_degenerate_percentiles():
    topology = metrics_topology([fault("fail", "a", at_us=10.0, device=0)])
    tenants = {"t": {
        "0": device_payload(ios=1, latency=[37.0], timeline=[(20.0, 4096)],
                            started=10.0, finished=20.0, bytes_read=4096,
                            completion_times=[20.0]),
    }}
    merged = merge_shard_payloads(
        topology, [shard_payload(tenants,
                                 fault_windows=[window(10.0, 30.0, index=0)])])
    tenant_payload = merged["tenants"]["t"]
    assert tenant_payload["mean_us"] == tenant_payload["p50_us"] == \
        tenant_payload["p99_us"] == tenant_payload["max_us"] == 37.0
    during = merged["faults"]["during_rebuild"]
    assert during["ios"] == 1 and during["p999_us"] == 37.0
    json.dumps(merged, allow_nan=False)


def test_merge_zero_duration_devices_yield_zero_throughput_not_nan():
    """started == finished must not divide by zero anywhere (device
    throughput, iops, series binning, fault-window throughput)."""
    topology = metrics_topology([fault("fail", "a", at_us=10.0, device=0)])
    tenants = {"t": {
        "0": device_payload(),  # never started: all zeros
        "1": device_payload(),
    }}
    merged = merge_shard_payloads(
        topology, [shard_payload(tenants,
                                 fault_windows=[window(10.0, None, index=0)])])
    assert merged["fleet"]["duration_us"] == 0.0
    assert merged["fleet"]["throughput_gbps"] == 0.0
    assert merged["fleet"]["iops"] == 0.0
    assert "series" not in merged["fleet"]  # no events -> no binned series
    assert merged["faults"]["steady"]["throughput_gbps"] == 0.0
    json.dumps(merged, allow_nan=False)
    headline = fleet_headline(merged)
    assert headline["throughput_gbps"] == 0.0


def test_merge_is_invariant_to_shard_payload_order():
    """Pooling happens in global-index order, so shuffling which shard
    reports which device cannot change the merged payload."""
    topology = metrics_topology([fault("fail", "a", at_us=10.0, device=0)])
    payload_0 = device_payload(ios=1, latency=[10.0], timeline=[(20.0, 4096)],
                               started=10.0, finished=20.0, bytes_read=4096,
                               completion_times=[20.0])
    payload_1 = device_payload(ios=1, latency=[30.0], timeline=[(25.0, 8192)],
                               started=10.0, finished=25.0, bytes_read=8192,
                               completion_times=[25.0])
    windows = [window(10.0, 40.0, index=0)]
    together = merge_shard_payloads(topology, [
        shard_payload({"t": {"0": payload_0, "1": payload_1}},
                      fault_windows=windows)])
    split = merge_shard_payloads(topology, [
        shard_payload({"t": {"1": payload_1}}, fault_windows=[]),
        shard_payload({"t": {"0": payload_0}}, fault_windows=windows),
    ])
    assert json.dumps(together, sort_keys=True) == \
        json.dumps(split, sort_keys=True)


def test_fault_free_merge_has_no_fault_keys():
    topology = metrics_topology()
    tenants = {"t": {"0": device_payload(), "1": device_payload()}}
    merged = merge_shard_payloads(topology, [shard_payload(tenants)])
    assert "faults" not in merged
    assert "faults" not in merged["tenants"]["t"]
    assert "shed_ios" not in merged["groups"]["a"]
    json.dumps(merged, allow_nan=False)
