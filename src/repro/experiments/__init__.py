"""Reproduction of the paper's evaluation section, plus open-ended sweeps.

Each ``figure*`` module regenerates one paper artifact; :func:`run_all` runs
everything and renders a combined text report.  Beyond the paper's grid, the
scenario-sweep subsystem (:mod:`repro.experiments.scenarios`,
:mod:`repro.experiments.sweep`) turns the same machinery into an open-ended
characterization harness: named scenarios expand parameter grids into
independent cells, execute across worker processes, and cache results as
JSON.  ``python -m repro.experiments`` lists, runs, and diffs scenarios.
"""

from repro.experiments.common import DeviceKind, ExperimentScale, build_device, measure_cell
from repro.experiments.scenarios import (
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register,
    scenario,
)
from repro.experiments.sweep import (
    CellSpec,
    SweepResult,
    SweepRunner,
    diff_results,
    expand_grid,
    run_cell,
    spec_hash,
)
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.runner import EvaluationReport, run_all
from repro.experiments.table1 import render_table1, run_table1

__all__ = [
    "DeviceKind",
    "ExperimentScale",
    "build_device",
    "measure_cell",
    "ScenarioSpec",
    "scenario",
    "register",
    "get_scenario",
    "all_scenarios",
    "CellSpec",
    "SweepRunner",
    "SweepResult",
    "run_cell",
    "expand_grid",
    "spec_hash",
    "diff_results",
    "run_table1",
    "render_table1",
    "run_figure2",
    "Figure2Result",
    "run_figure3",
    "Figure3Result",
    "run_figure4",
    "Figure4Result",
    "run_figure5",
    "Figure5Result",
    "run_all",
    "EvaluationReport",
]
