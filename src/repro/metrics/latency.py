"""Per-request latency recording and summaries.

The paper reports average and P99.9 latency (Figure 2); the recorder keeps
every sample so arbitrary percentiles, histograms, and distribution
comparisons are available to tests and advisors as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency population (microseconds)."""

    count: int
    mean_us: float
    p50_us: float
    p90_us: float
    p99_us: float
    p999_us: float
    min_us: float
    max_us: float
    stddev_us: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "p50_us": self.p50_us,
            "p90_us": self.p90_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "min_us": self.min_us,
            "max_us": self.max_us,
            "stddev_us": self.stddev_us,
        }

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


class LatencyRecorder:
    """Collects latency samples (in microseconds) and summarises them."""

    def __init__(self, name: str = "latency"):
        self.name = name
        self._samples: list[float] = []

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, latency_us: float) -> None:
        """Add one sample."""
        if latency_us < 0:
            raise ValueError(f"negative latency: {latency_us}")
        self._samples.append(latency_us)

    def extend(self, latencies: Iterable[float]) -> None:
        """Add many samples."""
        for value in latencies:
            self.record(value)

    @property
    def samples(self) -> np.ndarray:
        """The raw samples as a numpy array (copy)."""
        return np.asarray(self._samples, dtype=np.float64)

    def mean(self) -> float:
        return float(np.mean(self._samples)) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100)."""
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, q))

    def p999(self) -> float:
        """The P99.9 latency the paper reports."""
        return self.percentile(99.9)

    def summary(self) -> LatencySummary:
        """Full summary of the recorded population."""
        if not self._samples:
            return LatencySummary.empty()
        arr = np.asarray(self._samples, dtype=np.float64)
        minimum = float(arr.min())
        maximum = float(arr.max())
        # Pairwise summation can leave the mean a few ULPs outside the sample
        # range for near-constant populations; clamp to keep the invariant
        # min <= mean <= max exact.
        mean = min(max(float(arr.mean()), minimum), maximum)
        return LatencySummary(
            count=len(arr),
            mean_us=mean,
            p50_us=float(np.percentile(arr, 50)),
            p90_us=float(np.percentile(arr, 90)),
            p99_us=float(np.percentile(arr, 99)),
            p999_us=float(np.percentile(arr, 99.9)),
            min_us=minimum,
            max_us=maximum,
            stddev_us=float(arr.std()),
        )

    def histogram(self, bins: int = 20,
                  range_us: Optional[tuple[float, float]] = None) -> tuple[np.ndarray, np.ndarray]:
        """Histogram of the samples (counts, bin edges)."""
        arr = np.asarray(self._samples, dtype=np.float64)
        return np.histogram(arr, bins=bins, range=range_us)

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Return a new recorder containing both populations."""
        merged = LatencyRecorder(f"{self.name}+{other.name}")
        merged._samples = self._samples + other._samples
        return merged
