"""Regression and property tests: chunk placement termination and the new
workload generators (zipfian, hot/cold, bursty, generalised mixed)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebs.chunk_map import ChunkMap
from repro.host.io import IOKind, KiB, MiB
from repro.workload.patterns import (
    BurstyPattern,
    HotColdPattern,
    MixedPattern,
    RandomPattern,
    make_pattern,
)

REGION = 8 * MiB
IO = 4 * KiB


# ---------------------------------------------------------------------------
# ChunkMap placement: the seed bug was an infinite loop whenever the walk
# stride shared a factor with num_nodes (e.g. stride 2, 4, or 6 on 8 nodes).
# ---------------------------------------------------------------------------

def make_map(num_nodes, replication_factor, seed=0, chunks=256):
    return ChunkMap(capacity_bytes=chunks * 64 * KiB, chunk_size=64 * KiB,
                    num_nodes=num_nodes, replication_factor=replication_factor,
                    seed=seed)


def test_placement_group_regression_every_residue_class_non_prime_nodes():
    """8 nodes / rf=3: every (chunk_index, seed) residue class terminates.

    Before the fix, any chunk whose derived stride was even looped forever
    because the walk only visited half the ring.  Covering chunk indices and
    seeds across every residue class modulo num_nodes (and modulo the stride
    generator num_nodes - 1) exercises all stride values.
    """
    for num_nodes in (6, 8, 9, 12):
        for seed in range(num_nodes):
            chunk_map = make_map(num_nodes, replication_factor=3, seed=seed)
            for chunk_index in range(num_nodes * (num_nodes - 1)):
                group = chunk_map.placement_group(chunk_index)
                assert len(group) == 3
                assert len(set(group)) == 3
                assert all(0 <= node < num_nodes for node in group)


def test_placement_group_deterministic_and_spread():
    chunk_map = make_map(8, 3, seed=5)
    groups = [chunk_map.placement_group(index) for index in range(256)]
    assert groups == [chunk_map.placement_group(index) for index in range(256)]
    # Every node serves some chunk (placement is not degenerate).
    used = {node for group in groups for node in group}
    assert used == set(range(8))


@settings(max_examples=120, deadline=None)
@given(num_nodes=st.integers(min_value=1, max_value=40),
       replication_factor=st.integers(min_value=1, max_value=40),
       seed=st.integers(min_value=0, max_value=2**16),
       chunk_index=st.integers(min_value=0, max_value=255))
def test_placement_group_always_terminates_with_distinct_nodes(
        num_nodes, replication_factor, seed, chunk_index):
    """Property: any valid (nodes, rf, seed, chunk) yields rf distinct nodes."""
    replication_factor = min(replication_factor, num_nodes)
    chunk_map = make_map(num_nodes, replication_factor, seed=seed)
    group = chunk_map.placement_group(chunk_index)
    assert len(group) == replication_factor
    assert len(set(group)) == replication_factor


@settings(max_examples=100, deadline=None)
@given(chunk_size_kib=st.integers(min_value=1, max_value=64),
       offset=st.integers(min_value=0, max_value=2**20),
       size=st.integers(min_value=1, max_value=2**18))
def test_split_partitions_the_request_exactly(chunk_size_kib, offset, size):
    """Property: split() covers [offset, offset+size) exactly, in order."""
    chunk_map = ChunkMap(capacity_bytes=4 * MiB, chunk_size=chunk_size_kib * 1024,
                         num_nodes=8, replication_factor=3)
    size = min(size, chunk_map.capacity_bytes - offset)
    if size <= 0:
        return
    subrequests = chunk_map.split(offset, size)
    assert sum(sub.size for sub in subrequests) == size
    position = offset
    for sub in subrequests:
        assert sub.offset_in_chunk < chunk_map.chunk_size
        assert sub.chunk_index * chunk_map.chunk_size + sub.offset_in_chunk == position
        assert sub.size <= chunk_map.chunk_size - sub.offset_in_chunk
        position += sub.size
    assert position == offset + size


# ---------------------------------------------------------------------------
# New workload generators
# ---------------------------------------------------------------------------

def _offsets_valid(pattern, region_bytes, io_size, count=200):
    for _ in range(count):
        offset = pattern.next_offset()
        assert 0 <= offset <= region_bytes - io_size
        assert offset % io_size == 0


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       hot_fraction=st.floats(min_value=0.01, max_value=0.99),
       hot_access_fraction=st.floats(min_value=0.0, max_value=1.0))
def test_hot_cold_offsets_stay_aligned_and_in_region(seed, hot_fraction,
                                                     hot_access_fraction):
    pattern = HotColdPattern(REGION, IO, seed=seed, hot_fraction=hot_fraction,
                             hot_access_fraction=hot_access_fraction)
    _offsets_valid(pattern, REGION, IO, count=100)


def test_hot_cold_concentrates_traffic():
    pattern = HotColdPattern(REGION, IO, seed=3, hot_fraction=0.1,
                             hot_access_fraction=0.9)
    hits = {}
    for _ in range(4000):
        offset = pattern.next_offset()
        hits[offset] = hits.get(offset, 0) + 1
    # The top-10% most-hit slots should absorb ~90% of accesses.
    ranked = sorted(hits.values(), reverse=True)
    hot_slots = max(1, int(len(pattern._permutation) * 0.1))
    assert sum(ranked[:hot_slots]) / 4000 > 0.7


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       theta=st.floats(min_value=1.01, max_value=3.0))
def test_zipfian_offsets_stay_aligned_and_in_region(seed, theta):
    pattern = make_pattern("zipfread", REGION, IO, seed=seed, theta=theta)
    _offsets_valid(pattern, REGION, IO, count=100)


def test_bursty_pattern_inserts_idle_every_burst():
    base = RandomPattern(REGION, IO, seed=1)
    pattern = BurstyPattern(base, burst_ios=5, idle_us=1000.0)
    pauses = []
    for _ in range(23):
        pauses.append(pattern.next_think_time_us())
        pattern.next()
    # The first burst starts immediately; afterwards a pause precedes every
    # 5th request.
    assert pauses[:5] == [0.0] * 5
    assert pauses[5] == 1000.0
    assert pauses[10] == 1000.0
    assert sum(1 for pause in pauses if pause > 0) == 4


def test_bursty_duty_cycle_derives_idle_gap():
    base = RandomPattern(REGION, IO, seed=1)
    pattern = BurstyPattern(base, burst_ios=10, duty_cycle=0.25,
                            service_estimate_us=100.0)
    # on-time = 10 * 100us; duty 0.25 -> idle = 3x on-time.
    assert pattern.idle_us == pytest.approx(3000.0)
    full_duty = BurstyPattern(RandomPattern(REGION, IO), burst_ios=4,
                              duty_cycle=1.0)
    assert full_duty.idle_us == 0.0
    with pytest.raises(ValueError):
        BurstyPattern(base, burst_ios=0, idle_us=1.0)
    with pytest.raises(ValueError):
        BurstyPattern(base, burst_ios=1)


@settings(max_examples=30, deadline=None)
@given(write_ratio=st.floats(min_value=0.0, max_value=1.0),
       seed=st.integers(min_value=0, max_value=2**16))
def test_mixed_pattern_write_fraction_tracks_ratio(write_ratio, seed):
    pattern = MixedPattern(RandomPattern(REGION, IO, seed=seed), write_ratio,
                           seed=seed)
    kinds = [pattern.next()[0] for _ in range(400)]
    writes = sum(1 for kind in kinds if kind is IOKind.WRITE)
    assert abs(writes / 400 - write_ratio) < 0.12


def test_make_pattern_mixed_families_and_bursty_prefix():
    for name in ("seqrw", "zipfrw", "hotcoldrw"):
        pattern = make_pattern(name, REGION, IO, write_ratio=0.5, seed=3)
        assert isinstance(pattern, MixedPattern)
        with pytest.raises(ValueError):
            make_pattern(name, REGION, IO)  # write_ratio required
    bursty = make_pattern("bursty-hotcoldwrite", REGION, IO, seed=3,
                          burst_ios=8, idle_us=50.0, hot_fraction=0.2)
    assert isinstance(bursty, BurstyPattern)
    assert isinstance(bursty.base, HotColdPattern)
    assert bursty.base.hot_fraction == pytest.approx(0.2)
    assert bursty.base.next_kind() is IOKind.WRITE
    with pytest.raises(ValueError):
        make_pattern("no-such-pattern", REGION, IO)


def test_chunk_map_stride_is_coprime_with_node_count():
    """The documented invariant behind the termination fix."""
    for num_nodes in (4, 6, 8, 9, 10, 12, 16):
        chunk_map = make_map(num_nodes, min(3, num_nodes))
        for chunk_index in range(64):
            group = chunk_map.placement_group(chunk_index)
            if len(group) >= 2:
                stride = (group[1] - group[0]) % num_nodes
                assert math.gcd(stride, num_nodes) == 1
