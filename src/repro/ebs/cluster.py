"""The storage cluster: nodes, placement, and chunk-level request service.

:class:`StorageCluster` owns the :class:`~repro.ebs.storage_node.StorageNode`
objects and the :class:`~repro.ebs.chunk_map.ChunkMap`, and provides the
generator entry points the ESSD device uses to service one chunk-level
sub-request (network hop, replica fan-out for writes, single-replica reads).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ebs.chunk_map import ChunkMap, SubRequest
from repro.ebs.config import EssdProfile
from repro.ebs.network import DatacenterNetwork
from repro.ebs.replication import ReplicationPolicy
from repro.ebs.storage_node import StorageNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator


@dataclass
class ClusterStats:
    """Aggregate counters across all nodes of the cluster."""

    subrequest_reads: int = 0
    subrequest_writes: int = 0
    replica_writes: int = 0


class StorageCluster:
    """Backend cluster of one elastic volume."""

    def __init__(self, sim: "Simulator", profile: EssdProfile):
        self.sim = sim
        self.profile = profile
        self.network = DatacenterNetwork(sim, profile.network, seed=profile.seed ^ 0x7E7)
        self.nodes = [StorageNode(sim, node_id, profile.node)
                      for node_id in range(profile.storage_nodes)]
        self.chunk_map = ChunkMap(
            capacity_bytes=profile.capacity_bytes,
            chunk_size=profile.chunk_size,
            num_nodes=profile.storage_nodes,
            replication_factor=profile.replication_factor,
            seed=profile.seed & 0xFFFF,
        )
        self.replication = ReplicationPolicy(
            replication_factor=profile.replication_factor,
            write_quorum=profile.write_quorum,
        )
        self.stats = ClusterStats()
        self._read_salt = itertools.count()

    # -- helpers -----------------------------------------------------------------
    def split(self, offset: int, size: int) -> list[SubRequest]:
        """Chunk-align a host request."""
        return self.chunk_map.split(offset, size)

    def nodes_for_chunk(self, chunk_index: int) -> tuple[int, ...]:
        return self.chunk_map.placement_group(chunk_index)

    def node_utilization(self) -> list[float]:
        """Per-node busy-time (us) snapshot, for load-balance diagnostics."""
        return [node.stats.busy_time_us for node in self.nodes]

    # -- chunk-level service -------------------------------------------------------
    def write_subrequest(self, sub: SubRequest):
        """Generator: replicate one chunk-level write and wait for the quorum."""
        group = self.chunk_map.placement_group(sub.chunk_index)
        # Request message to the storage cluster carries the payload.
        yield self.sim.timeout(self.network.transfer_delay(sub.size))
        replica_events = [self.sim.process(self.nodes[node_id].write(sub.size))
                          for node_id in group]
        self.stats.replica_writes += len(replica_events)
        if self.replication.waits_for_all:
            yield self.sim.all_of(replica_events)
        else:
            # Wait until the quorum count of replicas has acknowledged.
            completed = 0
            needed = self.replication.acknowledgements_needed()
            pending = list(replica_events)
            while completed < needed and pending:
                finished = yield self.sim.any_of(pending)
                completed += len(finished)
                pending = [event for event in pending if not event.processed]
        # Acknowledgement back to the VM (metadata-sized).
        yield self.sim.timeout(self.network.transfer_delay(256))
        self.stats.subrequest_writes += 1

    def read_subrequest(self, sub: SubRequest, sequential: bool = False):
        """Generator: read one chunk-level piece from a single replica."""
        sim = self.sim
        network = self.network
        node_id = self.chunk_map.read_replica(sub.chunk_index, next(self._read_salt))
        # Request message (metadata-sized), response carries the payload.
        yield sim.timeout(network.transfer_delay(256))
        yield from self.nodes[node_id].read(sub.size, sequential)
        yield sim.timeout(network.transfer_delay(sub.size))
        self.stats.subrequest_reads += 1
