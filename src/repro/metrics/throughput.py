"""Throughput timelines: bytes completed per time bin.

Figure 3 of the paper plots runtime throughput of a sustained random-write
workload; Figure 5 plots steady-state throughput under mixed read/write
ratios.  :class:`ThroughputTimeline` supports both: completions are recorded
with their timestamp and byte count, then aggregated into fixed-width bins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class ThroughputSample:
    """Throughput over one time bin."""

    start_us: float
    end_us: float
    bytes_completed: int

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def gigabytes_per_second(self) -> float:
        """Throughput in GB/s (decimal gigabytes, as the paper plots)."""
        if self.duration_us <= 0:
            return 0.0
        return self.bytes_completed / self.duration_us / 1000.0


class ThroughputTimeline:
    """Records (completion time, bytes) events and bins them."""

    def __init__(self, name: str = "throughput"):
        self.name = name
        self._times: list[float] = []
        self._bytes: list[int] = []

    def __len__(self) -> int:
        return len(self._times)

    def record(self, time_us: float, num_bytes: int) -> None:
        """Record one completion of ``num_bytes`` at ``time_us``."""
        if num_bytes < 0:
            raise ValueError(f"negative byte count: {num_bytes}")
        if self._times and time_us < self._times[-1]:
            raise ValueError("completions must be recorded in time order")
        self._times.append(time_us)
        self._bytes.append(num_bytes)

    def record_many(self, events: Iterable[tuple[float, int]]) -> None:
        for time_us, num_bytes in events:
            self.record(time_us, num_bytes)

    def events(self) -> list[tuple[float, int]]:
        """The recorded ``(completion time, bytes)`` events, in time order.

        This is the merge/serialization interface: the fleet layer ships
        per-shard timelines as plain pairs and rebuilds a merged timeline
        with :meth:`record_many`.
        """
        return list(zip(self._times, self._bytes))

    @property
    def total_bytes(self) -> int:
        return int(sum(self._bytes))

    @property
    def duration_us(self) -> float:
        if not self._times:
            return 0.0
        return self._times[-1] - self._times[0]

    def average_gbps(self) -> float:
        """Average throughput in GB/s across the recorded span."""
        duration = self.duration_us
        if duration <= 0:
            return 0.0
        return self.total_bytes / duration / 1000.0

    def binned(self, bin_us: float) -> list[ThroughputSample]:
        """Aggregate the timeline into fixed ``bin_us``-wide samples."""
        if bin_us <= 0:
            raise ValueError("bin width must be positive")
        if not self._times:
            return []
        times = np.asarray(self._times)
        payloads = np.asarray(self._bytes)
        start = float(times[0])
        end = float(times[-1])
        num_bins = max(1, int(np.ceil((end - start) / bin_us)))
        indices = np.minimum(((times - start) // bin_us).astype(int), num_bins - 1)
        sums = np.bincount(indices, weights=payloads, minlength=num_bins)
        samples = []
        for index in range(num_bins):
            bin_start = start + index * bin_us
            bin_end = bin_start + bin_us
            if index == num_bins - 1:
                # The recording span rarely ends exactly on a bin boundary;
                # normalising the trailing bin by the full width would
                # under-report its throughput (a partial bin holds
                # proportionally fewer completions).
                bin_end = max(min(bin_end, end), bin_start + 1e-9)
            samples.append(ThroughputSample(
                start_us=bin_start,
                end_us=bin_end,
                bytes_completed=int(sums[index]),
            ))
        # A sliver of a trailing bin (completions landing just past the last
        # boundary) would be normalised by a near-zero span and report an
        # absurd rate; fold it into the previous bin instead.  The threshold
        # stays low (5%) because a shorter-but-substantial trailing bin is
        # real signal (e.g. a throttled tail) that merging would erase.
        if len(samples) >= 2 and samples[-1].duration_us < 0.05 * bin_us:
            tail = samples.pop()
            prev = samples[-1]
            samples[-1] = ThroughputSample(
                start_us=prev.start_us,
                end_us=tail.end_us,
                bytes_completed=prev.bytes_completed + tail.bytes_completed,
            )
        elif len(samples) == 1 and samples[0].duration_us < 0.05 * bin_us:
            # Degenerate single-bin timeline (all completions at ~one
            # timestamp): there is no span to derive a rate from, so assume
            # the requested bin width rather than dividing by ~zero.
            only = samples[0]
            samples[0] = ThroughputSample(
                start_us=only.start_us,
                end_us=only.start_us + bin_us,
                bytes_completed=only.bytes_completed,
            )
        return samples

    def gbps_series(self, bin_us: float) -> tuple[np.ndarray, np.ndarray]:
        """(bin centre times in seconds, GB/s values) for plotting/reporting."""
        samples = self.binned(bin_us)
        centres = np.asarray([(s.start_us + s.end_us) / 2 / 1e6 for s in samples])
        values = np.asarray([s.gigabytes_per_second for s in samples])
        return centres, values

    def cumulative_bytes_at(self, time_us: float) -> int:
        """Total bytes completed up to ``time_us`` (inclusive)."""
        total = 0
        for t, b in zip(self._times, self._bytes):
            if t > time_us:
                break
            total += b
        return total
