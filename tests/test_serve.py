"""Integration tests for the experiment service (repro.serve).

The core contracts under test:

* **Bit-identity** -- a fleet defined only as a document, submitted to a
  running server over a unix socket, produces metrics byte-identical to an
  independent batch run of the same document, hits the same sweep-cache
  key, and ``diff_results`` between the two runs is clean.
* **Streaming** -- watchers receive ``started``, one ``cell`` per finished
  cell, and a terminal ``done`` carrying the full result list; late
  watchers get the buffered history replayed.
* **Concurrency** -- two submissions of distinct scenarios on a
  two-worker server both complete, with interleaved event streams
  (observable through the server-global ``seq``).
* **Admission control** -- submissions beyond ``max_pending`` are rejected
  immediately with a reason.

Every server runs on a pytest tmp_path unix socket (or an ephemeral TCP
port) and is torn down via the context manager, so the suite never leaks
threads or sockets past a test -- teardown is deterministic and bounded.
"""

import json
import threading

import pytest

from repro.cluster import FleetTopology, fleet, group, tenant
from repro.config import scenario_for_document, topology_to_document
from repro.experiments.scenarios import register, scenario
from repro.experiments.sweep import (
    CellOutcome,
    CellSpec,
    SweepCache,
    SweepResult,
    SweepRunner,
    diff_results,
)
from repro.serve import ExperimentServer, ServeClient

MINI_CAPACITY = 1 << 24


def loop_fleet(name: str, io_count: int = 400, count: int = 3,
               seed: int = 17) -> FleetTopology:
    return fleet(
        name,
        groups=[group("grp", "LOOP", count, capacity_bytes=MINI_CAPACITY)],
        tenants=[tenant("t", "grp", pattern="randwrite", io_size=4096,
                        queue_depth=4, io_count=io_count)],
        seed=seed,
    )


def fleet_document(name: str, **kwargs) -> dict:
    return topology_to_document(loop_fleet(name, **kwargs))


@pytest.fixture
def server(tmp_path):
    instance = ExperimentServer(socket_path=tmp_path / "serve.sock",
                                cache_dir=tmp_path / "serve-cache",
                                job_workers=2, max_pending=4)
    with instance:
        yield instance


def client_for(server: ExperimentServer) -> ServeClient:
    return ServeClient(socket_path=server.socket_path, timeout=60.0)


# ---------------------------------------------------------------------------
# Protocol basics
# ---------------------------------------------------------------------------

def test_ping(server):
    with client_for(server) as client:
        response = client.ping()
    assert response["ok"]
    assert response["event"] == "pong"
    assert response["max_pending"] == 4


def test_unknown_op_reports_choices(server):
    with client_for(server) as client:
        response = client.request({"op": "frobnicate"})
    assert not response["ok"]
    assert "submit" in response["reason"]


def test_unknown_scenario_rejected_with_known_list(server):
    with client_for(server) as client:
        response = client.submit(scenario="no-such-scenario")
    assert not response["ok"]
    assert response["event"] == "rejected"
    assert "known" in response["reason"]


def test_invalid_document_rejected_with_path(server):
    doc = fleet_document("broken")
    doc["groups"][0]["count"] = 0
    with client_for(server) as client:
        response = client.submit(document=doc)
    assert not response["ok"]
    assert "groups[0].count: expected positive int" in response["reason"]


def test_tcp_transport(tmp_path):
    with ExperimentServer(port=0, cache_dir=tmp_path / "cache",
                          job_workers=1) as server:
        with ServeClient(port=server.port, timeout=60.0) as client:
            assert client.ping()["ok"]
            terminal, events = client.run(
                document=fleet_document("tcp-fleet", io_count=60))
    assert terminal["event"] == "done"
    assert len(terminal["results"]) == 1


def test_shutdown_op(tmp_path):
    server = ExperimentServer(socket_path=tmp_path / "s.sock",
                              cache_dir=tmp_path / "cache")
    server.start()
    with ServeClient(socket_path=server.socket_path, timeout=60.0) as client:
        assert client.shutdown()["event"] == "stopping"
    server._stop.wait(timeout=30.0)
    assert server._stop.is_set()
    server.stop()  # idempotent
    assert not server.socket_path.exists()


# ---------------------------------------------------------------------------
# Bit-identity with the batch path
# ---------------------------------------------------------------------------

def test_served_document_is_bit_identical_to_batch_run(server, tmp_path):
    """The acceptance criterion: document -> serve == batch fleet run."""
    doc = fleet_document("identity-fleet", io_count=200)
    with client_for(server) as client:
        terminal, events = client.run(document=doc)
    assert terminal["event"] == "done"
    [served] = terminal["results"]
    assert not served["cached"]

    # Independent batch run of the same document, in a *separate* cache.
    spec = scenario_for_document(doc)
    batch = SweepRunner(cache_dir=tmp_path / "batch-cache").run(spec)
    [outcome] = batch.outcomes

    # Bit-identical metrics and the same cache key on both sides.
    assert served["metrics"] == outcome.metrics
    assert served["cache_key"] == outcome.cell.cache_key()

    # The server populated its cache under that key: the batch CLI pointed
    # at the server's cache directory gets a pure cache hit.
    rerun = SweepRunner(cache_dir=server._runner_kwargs["cache_dir"]).run(spec)
    assert rerun.outcomes[0].cached
    assert rerun.outcomes[0].metrics == outcome.metrics

    # diff_results between the served and batch sweeps is clean.
    served_result = SweepResult(scenario=spec.name, outcomes=[
        CellOutcome(cell=spec.cells()[0], metrics=served["metrics"])])
    rows = diff_results(served_result, batch, metric="mean_us")
    assert all(row["relative_change"] == 0.0 for row in rows)


def test_repeat_submission_is_served_from_cache(server):
    doc = fleet_document("cache-fleet", io_count=100)
    with client_for(server) as client:
        first, _ = client.run(document=doc)
    with client_for(server) as client:
        second, events = client.run(document=doc)
    assert [entry["cached"] for entry in first["results"]] == [False]
    assert [entry["cached"] for entry in second["results"]] == [True]
    assert first["results"][0]["metrics"] == second["results"][0]["metrics"]


def test_registered_name_and_document_share_cache_entries(server):
    """Submitting by registered name == submitting the same document."""
    topology = loop_fleet("twin-fleet", io_count=100)
    register(scenario("twin-fleet", "python twin", devices=("fleet",),
                      fleet=topology, tags=("fleet",)), replace=True)
    with client_for(server) as client:
        by_name, _ = client.run(scenario="twin-fleet")
    with client_for(server) as client:
        by_doc, _ = client.run(document=topology_to_document(topology))
    assert by_name["event"] == by_doc["event"] == "done"
    # Same cache key, so the second submission was a pure hit.
    assert by_name["results"][0]["cache_key"] == \
        by_doc["results"][0]["cache_key"]
    assert by_doc["results"][0]["cached"]
    assert by_name["results"][0]["metrics"] == by_doc["results"][0]["metrics"]


# ---------------------------------------------------------------------------
# Streaming
# ---------------------------------------------------------------------------

def test_stream_carries_per_cell_metrics_and_terminal(server):
    register(scenario(
        "serve-grid", "multi-cell serve scenario", devices=("fleet",),
        fleet=loop_fleet("serve-grid-fleet", io_count=60),
        grid={"fleet.seed": (1, 2, 3)}, tags=("fleet",)), replace=True)
    with client_for(server) as client:
        terminal, events = client.run(scenario="serve-grid")
    kinds = [event["event"] for event in events]
    assert kinds == ["started", "cell", "cell", "cell", "done"]
    cells = [event for event in events if event["event"] == "cell"]
    assert [event["index"] for event in cells] == [0, 1, 2]
    for event in cells:
        assert event["total"] == 3
        assert event["metrics"]["ios_completed"] > 0
    seqs = [event["seq"] for event in events]
    assert seqs == sorted(seqs)
    assert len(terminal["results"]) == 3


def test_late_watcher_replays_buffered_events(server):
    doc = fleet_document("watch-fleet", io_count=60)
    with client_for(server) as client:
        response = client.submit(document=doc, watch=False)
        assert response["ok"]
        job = response["job"]
        # Poll until the job finishes, then watch: the full history replays.
        deadline_attempts = 300
        for _ in range(deadline_attempts):
            if client.status(job)["state"] == "done":
                break
            threading.Event().wait(0.05)
        assert client.status(job)["state"] == "done"
        client.send({"op": "watch", "job": job})
        events = list(client.stream())
    assert [event["event"] for event in events] == ["started", "cell", "done"]


# ---------------------------------------------------------------------------
# Concurrency and admission control
# ---------------------------------------------------------------------------

def test_concurrent_submissions_interleave(server):
    """Two distinct scenarios on a two-worker server: both complete, and
    their event streams interleave (global seq ranges overlap)."""
    for name in ("conc-a", "conc-b"):
        register(scenario(
            name, f"concurrency scenario {name}", devices=("fleet",),
            fleet=loop_fleet(f"{name}-fleet", io_count=4000),
            grid={"fleet.seed": (1, 2, 3, 4)}, tags=("fleet",)),
            replace=True)
    terminals: dict[str, dict] = {}
    streams: dict[str, list] = {}

    def run_one(name: str) -> None:
        with client_for(server) as client:
            terminal, events = client.run(scenario=name)
            terminals[name] = terminal
            streams[name] = events

    threads = [threading.Thread(target=run_one, args=(name,))
               for name in ("conc-a", "conc-b")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=90.0)
    assert terminals["conc-a"]["event"] == "done"
    assert terminals["conc-b"]["event"] == "done"
    assert len(terminals["conc-a"]["results"]) == 4
    assert len(terminals["conc-b"]["results"]) == 4

    seq_a = [event["seq"] for event in streams["conc-a"]]
    seq_b = [event["seq"] for event in streams["conc-b"]]
    # Interleaved: neither job's whole event range precedes the other's.
    assert min(seq_a) < max(seq_b) and min(seq_b) < max(seq_a)


def test_admission_control_rejects_beyond_max_pending(tmp_path):
    # job_workers=0: nothing drains the queue, so pending builds up
    # deterministically until admission control trips.
    with ExperimentServer(socket_path=tmp_path / "s.sock",
                          cache_dir=tmp_path / "cache",
                          job_workers=0, max_pending=2) as server:
        doc = fleet_document("shed-fleet", io_count=10)
        with ServeClient(socket_path=server.socket_path,
                         timeout=60.0) as client:
            first = client.submit(document=doc, watch=False)
            second = client.submit(document=doc, watch=False)
            third = client.submit(document=doc, watch=False)
    assert first["ok"] and second["ok"]
    assert not third["ok"]
    assert third["event"] == "rejected"
    assert "queue full" in third["reason"]
    assert "max-pending 2" in third["reason"]


def test_empty_submission_rejected(server):
    with client_for(server) as client:
        response = client.request({"op": "submit"})
    assert not response["ok"]
    assert "exactly one" in response["reason"]


# ---------------------------------------------------------------------------
# The submit CLI verb against a live server
# ---------------------------------------------------------------------------

def test_submit_cli_verb_streams_and_saves(server, tmp_path, capsys):
    from repro.experiments.cli import main

    doc = fleet_document("cli-fleet", io_count=60)
    path = tmp_path / "cli-fleet.json"
    path.write_text(json.dumps(doc))
    out_path = tmp_path / "result.json"
    code = main(["submit", str(path), "--socket", str(server.socket_path),
                 "--out", str(out_path)])
    captured = capsys.readouterr()
    assert code == 0, captured.err
    assert "accepted job-" in captured.out
    assert "cell 1/1" in captured.out
    assert "done" in captured.out
    saved = json.loads(out_path.read_text())
    assert saved["event"] == "done"
    assert len(saved["results"]) == 1


def test_submit_cli_rejection_exits_2(server, capsys):
    from repro.experiments.cli import main

    code = main(["submit", "no-such-scenario",
                 "--socket", str(server.socket_path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err
    assert "rejected" in captured.err
    assert "Traceback" not in captured.err


def test_submit_cli_unreachable_server_exits_2(tmp_path, capsys):
    from repro.experiments.cli import main

    code = main(["submit", "fleet-smoke",
                 "--socket", str(tmp_path / "absent.sock")])
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot reach server" in captured.err
