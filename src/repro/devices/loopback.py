"""A minimal constant-latency device.

:class:`LoopbackDevice` completes every request after a fixed service time,
optionally serialised through a bounded number of service slots.  It is the
smallest possible :class:`repro.devices.Device` implementation -- the kernel
microbenchmark uses it to measure request round-trips/sec through the full
submission path with no device-model physics in the way, and protocol tests
use it as a reference implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.host.device import BlockDevice
from repro.host.io import IORequest
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator


class LoopbackDevice(BlockDevice):
    """Fixed-service-time device with optional service-slot contention."""

    def __init__(self, sim: "Simulator", capacity_bytes: int = 1 << 30,
                 service_time_us: float = 10.0,
                 service_slots: Optional[int] = None,
                 logical_block_size: int = 4096, name: str = "loopback"):
        super().__init__(sim, capacity_bytes, logical_block_size, name)
        if service_time_us < 0:
            raise ValueError(f"negative service time: {service_time_us}")
        self.service_time_us = float(service_time_us)
        self._slots = Resource(sim, service_slots) if service_slots else None

    def _serve(self, request: IORequest):
        tracer = self.tracer
        if self._slots is not None:
            if tracer is not None:
                tracer.enter(request, "queue")
            yield self._slots.request()
        try:
            if tracer is not None:
                tracer.enter(request, "service")
            yield self.sim.timeout(self.service_time_us)
        finally:
            if self._slots is not None:
                self._slots.release()
        return request

    def _pipeline(self, request: IORequest):
        # Flattened service pipeline (see BlockDevice._pipeline): one
        # generator frame for the whole slot -> service -> finish chain,
        # identical event sequence to _serve + the default pipeline.
        slots = self._slots
        tracer = self.tracer
        if slots is not None:
            if tracer is not None:
                tracer.enter(request, "queue")
            yield slots.request()
        try:
            if tracer is not None:
                tracer.enter(request, "service")
            yield self.sim.timeout(self.service_time_us)
        finally:
            if slots is not None:
                slots.release()
        self._finish(request)
        return request

    def describe(self) -> dict:
        return {
            "name": self.name,
            "kind": "loopback",
            "capacity_bytes": self.capacity_bytes,
            "service_time_us": self.service_time_us,
            "ios_completed": self.stats.ios_completed,
        }
