"""Declarative fault injection: failures, repairs, drains, overload shedding.

A :class:`FaultEvent` names a device (or a whole group) and a time; the
fleet applies the resulting state flips **at epoch barriers** so that fault
timing -- like replica-delivery timing -- is quantized onto the exact same
``index * epoch_us`` float grid the shard runner synchronizes on.  That is
what keeps a faulted ``shards=N`` run bit-identical to the serial path:
every shard sees the flip with its clock sitting exactly on the barrier,
never mid-epoch at a layout-dependent instant.

Three failure semantics are provided:

* ``kind="fail"`` -- the device drops offline at the fault barrier and
  (optionally) returns after ``repair_after_us``.  A failure triggers a
  **re-replication storm**: the data the device had absorbed is rebuilt
  onto a promoted hot spare (``spare=<group>``) or round-robin across the
  surviving peers of its own group, as paced rebuild writes competing with
  foreground tenants through the ordinary :class:`repro.devices.Device`
  submission path.
* ``kind="drain"`` -- the device stops serving (planned maintenance) with
  no rebuild traffic; with ``repair_after_us`` it returns to service.
* Overload shedding -- while a device is offline, requests are not queued
  forever: the :class:`FaultInjector` proxy *sheds* them after a fixed
  ``shed_penalty_us`` (an immediate EIO-with-backoff model).  The optional
  ``max_inflight`` knob extends the same admission control to healthy
  devices, bounding the rebuild-vs-foreground overload.

:class:`FaultInjector` wraps any object satisfying the
:class:`repro.devices.Device` protocol, so failures compose with every
device family (SSD, ESSD, loopback) and with single-device sweep cells as
well as fleets.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional

from repro.determinism import canonical_json
from repro.host.io import IORequest, KiB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator

__all__ = [
    "FaultEvent",
    "FaultPolicy",
    "FaultInjector",
    "fault",
    "fault_epoch",
    "parse_fault_spec",
    "schedule_cell_faults",
]

_KINDS = ("fail", "drain")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: a device (or group) leaving service at a time.

    ``at_us`` is quantized *up* to the next epoch barrier by the fleet
    runner (:func:`fault_epoch`); ``repair_after_us`` measures from the
    requested ``at_us``, and the repair barrier is likewise rounded up (and
    always lands strictly after the fault barrier, so no fault is a no-op).
    ``device=None`` fails every device of the group -- a node failure in
    the paper's sense, since a group models one machine's device fleet.
    """

    kind: str
    group: str
    at_us: float
    device: Optional[int] = None
    repair_after_us: Optional[float] = None
    #: Hot-spare group: rebuild traffic targets this group instead of the
    #: surviving peers (``kind="fail"`` only).
    spare: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {_KINDS})")
        if self.at_us < 0:
            raise ValueError(f"fault at_us must be >= 0, got {self.at_us}")
        if self.repair_after_us is not None and self.repair_after_us <= 0:
            raise ValueError("repair_after_us must be positive when given")
        if self.device is not None and self.device < 0:
            raise ValueError(f"negative device index: {self.device}")
        if self.spare is not None and self.kind != "fail":
            raise ValueError("spare promotion only applies to kind='fail'")

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "group": self.group,
            "at_us": self.at_us,
            "device": self.device,
            "repair_after_us": self.repair_after_us,
            "spare": self.spare,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FaultEvent":
        return cls(
            kind=payload["kind"],
            group=payload["group"],
            at_us=float(payload["at_us"]),
            device=payload.get("device"),
            repair_after_us=payload.get("repair_after_us"),
            spare=payload.get("spare"),
        )


@dataclass(frozen=True)
class FaultPolicy:
    """How the fleet reacts to failures and overload.

    The rebuild pacing knobs double as the QoS control the paper's
    recovery discussion calls for: fewer/larger chunks per epoch trade
    rebuild time against foreground interference.
    """

    #: Size of one rebuild write (must stay a multiple of the 4 KiB
    #: logical block size every registered device family uses).
    rebuild_chunk_bytes: int = 256 * KiB
    #: Rebuild chunks released per epoch barrier (per failed device) --
    #: the storm's admission rate.
    rebuild_chunks_per_epoch: int = 8
    #: Latency charged to a request shed by an offline device (the
    #: timeout-and-fail-fast path a real initiator would take).
    shed_penalty_us: float = 200.0
    #: Optional admission cap: a device with this many requests already in
    #: flight sheds new arrivals instead of queueing them (``None``
    #: disables the cap).
    max_inflight: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rebuild_chunk_bytes < 4096 or self.rebuild_chunk_bytes % 4096:
            raise ValueError("rebuild_chunk_bytes must be a positive "
                             "multiple of 4096")
        if self.rebuild_chunks_per_epoch < 1:
            raise ValueError("rebuild_chunks_per_epoch must be >= 1")
        if self.shed_penalty_us < 0:
            raise ValueError("shed_penalty_us must be non-negative")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 when given")

    def to_payload(self) -> dict[str, Any]:
        return {
            "rebuild_chunk_bytes": self.rebuild_chunk_bytes,
            "rebuild_chunks_per_epoch": self.rebuild_chunks_per_epoch,
            "shed_penalty_us": self.shed_penalty_us,
            "max_inflight": self.max_inflight,
        }

    @classmethod
    def from_payload(cls, payload: Optional[Mapping[str, Any]]) -> "FaultPolicy":
        if not payload:
            return cls()
        return cls(**dict(payload))

    def scaled(self, **changes) -> "FaultPolicy":
        return replace(self, **changes)


def fault_epoch(at_us: float, epoch_us: float) -> int:
    """The epoch-barrier index a fault lands on (rounded up)."""
    return max(0, math.ceil(at_us / epoch_us))


def repair_epoch(event: FaultEvent, epoch_us: float) -> Optional[int]:
    """The barrier index the device returns to service (``None`` = never).

    Always strictly after the fault barrier so every fault has effect.
    """
    if event.repair_after_us is None:
        return None
    down = fault_epoch(event.at_us, epoch_us)
    back = fault_epoch(event.at_us + event.repair_after_us, epoch_us)
    return max(down + 1, back)


# ---------------------------------------------------------------------------
# Device proxy
# ---------------------------------------------------------------------------

class FaultInjector:
    """A :class:`repro.devices.Device` proxy adding failure + admission.

    While ``offline`` the proxy sheds every request after
    ``shed_penalty_us`` and marks it ``request.shed = True`` so workload
    hooks (replication, metrics) can tell a refused write from a served
    one.  Shed requests still complete with a latency, which is exactly
    how the closed-loop workload experiences an outage: a burst of fast
    failures rather than an infinite stall.
    """

    def __init__(self, sim: "Simulator", inner: Any, policy: FaultPolicy):
        self.sim = sim
        self.inner = inner
        self.policy = policy
        self.offline = False
        self.shed_ios = 0
        self.shed_bytes = 0
        self._inflight = 0

    # -- protocol delegation ------------------------------------------------
    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def capacity_bytes(self) -> int:
        return self.inner.capacity_bytes

    @property
    def logical_block_size(self) -> int:
        return self.inner.logical_block_size

    @property
    def stats(self):
        return self.inner.stats

    def describe(self) -> dict:
        payload = self.inner.describe()
        payload["offline"] = self.offline
        payload["shed_ios"] = self.shed_ios
        return payload

    def preload(self, offset: int = 0, size: Optional[int] = None) -> None:
        self.inner.preload(offset, size)

    def set_tracer(self, tracer) -> None:
        self.inner.set_tracer(tracer)

    # -- submission path ----------------------------------------------------
    def submit(self, request: IORequest):
        cap = self.policy.max_inflight
        if self.offline or (cap is not None and self._inflight >= cap):
            return self.sim.process(self._shed(request))
        if cap is None:
            return self.inner.submit(request)
        self._inflight += 1
        return self.sim.process(self._tracked(request))

    def read(self, offset: int, size: int, **kwargs):
        return self.submit(IORequest.read(offset, size, **kwargs))

    def write(self, offset: int, size: int, **kwargs):
        return self.submit(IORequest.write(offset, size, **kwargs))

    def flush(self, **kwargs):
        return self.submit(IORequest.flush(**kwargs))

    def _shed(self, request: IORequest):
        request.shed = True
        self.shed_ios += 1
        self.shed_bytes += request.size
        request.submit_time = self.sim.now
        yield self.sim.timeout(self.policy.shed_penalty_us)
        request.complete_time = self.sim.now
        return request

    def _tracked(self, request: IORequest):
        result = yield self.inner.submit(request)
        self._inflight -= 1
        return result


# ---------------------------------------------------------------------------
# Spec parsing (CLI / CellSpec plumbing)
# ---------------------------------------------------------------------------

def parse_fault_spec(spec: Any) -> tuple[tuple[FaultEvent, ...], FaultPolicy]:
    """Parse a fault schedule from JSON text or an already-decoded object.

    Accepts either a bare list of fault-event payloads or
    ``{"events": [...], "policy": {...}}``.
    """
    if isinstance(spec, str):
        spec = json.loads(spec)
    if isinstance(spec, Mapping):
        events = spec.get("events", ())
        policy = FaultPolicy.from_payload(spec.get("policy"))
    else:
        events = spec
        policy = FaultPolicy()
    return tuple(FaultEvent.from_payload(entry) for entry in events), policy


def canonical_fault_spec(events: Iterable[FaultEvent],
                         policy: FaultPolicy) -> str:
    """Canonical JSON for a fault schedule (what ``CellSpec.faults`` stores
    and the sweep cache hashes)."""
    return canonical_json({
        "events": [event.to_payload() for event in events],
        "policy": policy.to_payload(),
    })


def schedule_cell_faults(sim: "Simulator", devices: Iterable[Any],
                         events: Iterable[FaultEvent],
                         policy: FaultPolicy) -> list[FaultInjector]:
    """Wrap single-cell devices in :class:`FaultInjector` proxies and
    schedule the offline/online flips at their exact requested times.

    Single-device sweep cells run on one simulator, so there is no epoch
    grid to quantize onto -- flips are ordinary timed processes.  Fleet
    runs never use this path (the shard runner applies flips at barriers).
    """
    proxies = [FaultInjector(sim, device, policy) for device in devices]

    def flip(proxy: FaultInjector, event: FaultEvent):
        if event.at_us > 0:
            yield sim.timeout(event.at_us)
        proxy.offline = True
        if event.repair_after_us is not None:
            yield sim.timeout(event.repair_after_us)
            proxy.offline = False

    for event in events:
        for proxy in proxies:
            sim.process(flip(proxy, event))
    return proxies
