"""Replication policy: how many replicas, how many acknowledgements.

Cloud block stores replicate every chunk (three-way in the systems the paper
cites) for durability.  Writes are acknowledged once ``write_quorum``
replicas have persisted the data; reads are served by a single replica.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReplicationPolicy:
    """Synchronous replication configuration for a volume."""

    replication_factor: int = 3
    write_quorum: int = 3

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if not 1 <= self.write_quorum <= self.replication_factor:
            raise ValueError("write_quorum must be between 1 and replication_factor")

    @property
    def waits_for_all(self) -> bool:
        """Whether a write must wait for every replica."""
        return self.write_quorum == self.replication_factor

    def acknowledgements_needed(self) -> int:
        return self.write_quorum

    def describe(self) -> str:
        return f"{self.replication_factor}-way replication, quorum {self.write_quorum}"
