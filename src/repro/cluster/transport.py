"""Shard transports: how the coordinator exchanges batches with shards.

The conservative epoch loop in :mod:`repro.cluster.coordinator` is
transport-agnostic: it *posts* an advance grant to each shard (a barrier
time plus a batch of inbound :class:`ReplicaMessage`), *waits* for the
``(outbound, peek, ran)`` response, and finally *collects* each shard's
metrics payload.  :class:`ShardTransport` is that contract; three
implementations ship:

* :class:`InProcessTransport` -- every shard is a plain in-process
  :class:`ShardWorker`.  The serial reference path and the test default.
* :class:`ExecutorTransport` -- the faithful multi-process baseline: one
  persistent single-worker ``ProcessPoolExecutor`` per shard, pickled
  task-per-grant round-trips.  Default process transport on 1-core hosts.
* :class:`SharedMemoryTransport` -- ``multiprocessing.shared_memory``
  ring buffers per coordinator<->shard pair plus a lock-free barrier word
  per shard.  Workers spin-then-sleep on their command word; messages
  travel as fixed 64-byte struct-encoded slots; batches that outgrow the
  ring spill to a pipe side channel, so **correctness never depends on
  buffer size**.  Default process transport on multi-core hosts.

Every knob that used to be scattered across ``FleetCoordinator`` kwargs,
``SweepRunner(fleet_shards=...)``, and CLI flags collapses into one
:class:`FleetRunConfig` dataclass (the old kwargs survive as thin
deprecated aliases -- see the class docstring for the removal horizon).

Safety notes for the shared-memory path:

* **Publish-after-write.**  A ring writer copies every slot byte first and
  only then advances the ``head`` counter; command/response words follow
  the same discipline (payload words first, sequence word last).  A reader
  polling the counter can therefore never observe a torn record.
* **Crash detection.**  The coordinator's wait loop checks worker
  liveness and an explicit error word while sleeping; a worker that dies
  mid-grant (or raises) surfaces as a clean ``RuntimeError`` naming the
  shard instead of a hang or a half-read batch.
"""

from __future__ import annotations

import os
import struct
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields
from multiprocessing import Pipe, Process, shared_memory
from typing import Any, Optional, Sequence

from repro.cluster.shard import (
    ReplicaMessage,
    ShardPlan,
    ShardWorker,
    _worker_advance,
    _worker_collect,
    _worker_init,
)
from repro.cluster.topology import FleetTopology

__all__ = [
    "FleetRunConfig",
    "ShardTransport",
    "InProcessTransport",
    "ExecutorTransport",
    "SharedMemoryTransport",
    "MessageRing",
    "create_transport",
    "encode_message",
    "decode_message",
    "DEFAULT_RUN_AHEAD",
    "DEFAULT_SPIN_BUDGET",
    "DEFAULT_RING_SLOTS",
    "MAX_EPOCHS",
    "TRANSPORTS",
]

#: Safety bound on executed (non-skipped) epochs per run.
MAX_EPOCHS = 200_000

#: Default run-ahead window (epochs granted per task) for self-contained
#: shards.
DEFAULT_RUN_AHEAD = 16

#: Hot-spin iterations before a waiter starts sleeping (shared-memory
#: transport only).  Spinning wins when the peer answers in microseconds;
#: the sleep escalation (10us doubling to 1ms) keeps oversubscribed hosts
#: -- e.g. 4 shards on 1 core -- from burning the core the peer needs.
DEFAULT_SPIN_BUDGET = 2_000

#: Message slots per ring direction.  Purely a performance knob: batches
#: larger than the ring spill to the pipe side channel.
DEFAULT_RING_SLOTS = 1_024

#: Accepted ``FleetRunConfig.transport`` values.  ``auto`` resolves to
#: ``local`` for in-process runs, else ``shm`` on multi-core hosts and
#: ``executor`` on 1-core hosts.
TRANSPORTS = ("auto", "local", "executor", "shm")


# ---------------------------------------------------------------------------
# FleetRunConfig: every fleet-execution knob in one place
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FleetRunConfig:
    """Execution knobs for one fleet run, accepted uniformly by
    ``FleetCoordinator``, ``run_fleet``, ``SweepRunner``, the ``fleet`` /
    ``run`` / ``serve`` verbs, and ``kind: fleet`` config documents (as a
    ``run:`` block).

    None of these fields may change simulation *results*: bit-identity of
    the metrics payload across every combination is gated by the
    determinism tests.  They only trade coordination cost for parallelism.

    The pre-PR-10 spellings -- ``FleetCoordinator(shards=..., processes=...,
    run_ahead=...)``, ``SweepRunner(fleet_shards=...)``, and
    ``CellSpec.fleet_shards`` -- remain as thin deprecated aliases that
    merge into this dataclass.  They will be removed two releases after
    the transport layer lands; new code should pass a ``FleetRunConfig``.
    """

    #: Number of shard simulators (clamped to the device count).
    shards: int = 1
    #: Epochs granted per coordinator task to self-contained shards.
    #: ``run_ahead=1`` restores one-task-per-busy-epoch coordination.
    run_ahead: int = DEFAULT_RUN_AHEAD
    #: Override the topology's conservative synchronization window (``None``
    #: keeps the topology's own ``epoch_us``).
    epoch_us: Optional[float] = None
    #: One of :data:`TRANSPORTS`.  ``auto`` picks ``local`` for in-process
    #: runs, else ``shm``/``executor`` by core count.
    transport: str = "auto"
    #: Hot-spin iterations before shared-memory waiters sleep.
    spin_budget: int = DEFAULT_SPIN_BUDGET
    #: Deprecated alias for ``transport``: ``False`` forces ``local``,
    #: ``True`` forces a process transport.  ``None`` (default) means
    #: "processes when ``shards > 1``".
    processes: Optional[bool] = None
    #: Safety bound on executed (non-skipped) epochs per run.
    max_epochs: int = MAX_EPOCHS

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.run_ahead < 1:
            raise ValueError("run_ahead must be >= 1")
        if self.epoch_us is not None and not self.epoch_us > 0:
            raise ValueError("epoch_us must be positive")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r} "
                f"(choose from {', '.join(TRANSPORTS)})")
        if self.spin_budget < 0:
            raise ValueError("spin_budget must be >= 0")
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")

    def merged(self, **overrides: Any) -> "FleetRunConfig":
        """A copy with every non-``None`` override applied.

        This is the deprecated-alias funnel: ``FleetCoordinator`` kwargs
        and CLI flags land here, so an explicit kwarg wins over the config
        it rides along with.
        """
        changes = {key: value for key, value in overrides.items()
                   if value is not None}
        if not changes:
            return self
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return FleetRunConfig(**current)

    def resolve_transport(self) -> str:
        """The concrete transport this config runs on *this* host."""
        if self.transport != "auto":
            return self.transport
        processes = (self.shards > 1) if self.processes is None \
            else self.processes
        if not processes:
            return "local"
        return "shm" if (os.cpu_count() or 1) > 1 else "executor"

    # -- pairs form: hashable non-default fields, used by CellSpec --------

    def to_pairs(self) -> tuple[tuple[str, Any], ...]:
        """Sorted ``(field, value)`` pairs for every non-default field --
        the hashable spelling stored on ``CellSpec.fleet_run``."""
        defaults = FleetRunConfig()
        return tuple(sorted(
            (f.name, getattr(self, f.name)) for f in fields(self)
            if getattr(self, f.name) != getattr(defaults, f.name)))

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[str, Any]]) -> "FleetRunConfig":
        return cls(**dict(pairs))

    # -- document form: the ``run:`` block of ``kind: fleet`` documents ---

    def to_document(self) -> dict[str, Any]:
        """The ``run:`` block for config documents (non-default fields
        only, so the document round-trips losslessly)."""
        from repro.config import run_config_to_document
        return run_config_to_document(self)

    @classmethod
    def from_document(cls, document: Any, path: str = "run",
                      ) -> "FleetRunConfig":
        from repro.config import run_config_from_document
        return run_config_from_document(document, path=path)


# ---------------------------------------------------------------------------
# Compact struct encoding for ReplicaMessage ring slots
# ---------------------------------------------------------------------------

#: delivery_us f64, then six i64s (target_index, offset, size,
#: origin_index, origin_seq, delivery_epoch), then the kind byte.
_RECORD = struct.Struct("<dqqqqqqB")

#: Fixed slot width: the 57-byte record padded to a 64-byte boundary.
SLOT_SIZE = 64

_KIND_CODES = {"replica": 0, "rebuild": 1, "rebuild-read": 2}
_KIND_NAMES = {code: name for name, code in _KIND_CODES.items()}


def encode_message(message: ReplicaMessage) -> bytes:
    """Pack one message into its fixed-width slot encoding."""
    return _RECORD.pack(message.delivery_us, message.target_index,
                        message.offset, message.size, message.origin_index,
                        message.origin_seq, message.delivery_epoch,
                        _KIND_CODES[message.kind])


def decode_message(buffer: Any, offset: int = 0) -> ReplicaMessage:
    """Unpack one message from its slot encoding."""
    (delivery_us, target_index, data_offset, size, origin_index,
     origin_seq, delivery_epoch, kind) = _RECORD.unpack_from(buffer, offset)
    return ReplicaMessage(delivery_us, target_index, data_offset, size,
                          origin_index, origin_seq, delivery_epoch,
                          _KIND_NAMES[kind])


# ---------------------------------------------------------------------------
# MessageRing: an SPSC ring of fixed-width slots over any writable buffer
# ---------------------------------------------------------------------------

class MessageRing:
    """Single-producer single-consumer ring of ``ReplicaMessage`` slots.

    ``head`` and ``tail`` are monotonically increasing *message counters*
    (not byte offsets) stored as little-endian u64 words at the front of
    the buffer; slot ``n`` lives at ``(n % slots)``.  The writer copies
    every record byte **before** bumping ``head`` (publish-after-write),
    so a reader polling ``head`` can never decode a torn record: a crash
    mid-copy leaves ``head`` untouched and the partial slot invisible.

    :meth:`push` accepts as many messages as currently fit and reports the
    count -- the caller spills the remainder to its side channel.  The
    protocol is strictly request/response per shard, so producer and
    consumer never race on the same batch.
    """

    HEADER = 16  # head u64 + tail u64

    def __init__(self, buffer: Any, slots: int, offset: int = 0):
        if slots < 1:
            raise ValueError("ring needs at least one slot")
        self._buf = buffer
        self._slots = slots
        self._base = offset
        self._data = offset + self.HEADER

    @classmethod
    def size_for(cls, slots: int) -> int:
        return cls.HEADER + slots * SLOT_SIZE

    @property
    def slots(self) -> int:
        return self._slots

    @property
    def head(self) -> int:
        return struct.unpack_from("<Q", self._buf, self._base)[0]

    @property
    def tail(self) -> int:
        return struct.unpack_from("<Q", self._buf, self._base + 8)[0]

    def __len__(self) -> int:
        return self.head - self.tail

    def push(self, messages: Sequence[ReplicaMessage]) -> int:
        """Write as many messages as fit; returns the accepted count.

        The head counter is published only after every accepted slot is
        fully written.
        """
        head = self.head
        free = self._slots - (head - self.tail)
        accepted = min(free, len(messages))
        for index in range(accepted):
            slot = (head + index) % self._slots
            message = messages[index]
            _RECORD.pack_into(
                self._buf, self._data + slot * SLOT_SIZE,
                message.delivery_us, message.target_index, message.offset,
                message.size, message.origin_index, message.origin_seq,
                message.delivery_epoch, _KIND_CODES[message.kind])
        if accepted:
            struct.pack_into("<Q", self._buf, self._base, head + accepted)
        return accepted

    def drain(self, count: int) -> list[ReplicaMessage]:
        """Read exactly ``count`` published records, advancing ``tail``."""
        tail = self.tail
        available = self.head - tail
        if count > available:
            raise RuntimeError(
                f"ring drain of {count} messages but only {available} "
                "published (torn or missing write)")
        out = []
        for index in range(count):
            slot = (tail + index) % self._slots
            out.append(decode_message(self._buf,
                                      self._data + slot * SLOT_SIZE))
        if count:
            struct.pack_into("<Q", self._buf, self._base + 8, tail + count)
        return out


# ---------------------------------------------------------------------------
# The ShardTransport contract
# ---------------------------------------------------------------------------

class ShardTransport:
    """How the coordinator talks to its shards.

    The coordinator *posts* one advance grant per shard per round --
    ``(until_us, inbound batch, self_deliver)`` -- then *waits* for each
    ``(outbound, peek, ran)`` response; posting everything before waiting
    is what lets process transports run shards concurrently.  At the end
    of a run :meth:`collect_all` publishes every shard's metrics payload
    and :meth:`close` tears the transport down (idempotent; always called,
    even on error paths).

    Implementations must preserve batch order exactly: the coordinator's
    bit-identity proof sorts inbound batches *before* posting and assumes
    the shard sees that order.
    """

    #: Short name recorded in ``runtime["transport"]`` and bench entries.
    name = "abstract"

    def post(self, shard_id: int, until_us: Optional[float],
             inbound: Sequence[ReplicaMessage],
             self_deliver: bool = False) -> None:
        raise NotImplementedError

    def wait(self, shard_id: int,
             ) -> tuple[list[ReplicaMessage], float, int]:
        raise NotImplementedError

    def collect_all(self) -> list[dict[str, Any]]:
        raise NotImplementedError

    def scheduled_events(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # -- convenience wrappers (the barrier-free fast path uses these) -----

    def advance_all(self, until_us: Optional[float],
                    inboxes: Sequence[list[ReplicaMessage]],
                    self_deliver: bool = False,
                    ) -> list[tuple[list[ReplicaMessage], float, int]]:
        for shard_id, inbox in enumerate(inboxes):
            self.post(shard_id, until_us, inbox, self_deliver)
        return [self.wait(shard_id) for shard_id in range(len(inboxes))]

    def advance_subset(self, shard_ids: Sequence[int],
                       until_us: Optional[float], self_deliver: bool = False,
                       ) -> list[tuple[list[ReplicaMessage], float, int]]:
        for shard_id in shard_ids:
            self.post(shard_id, until_us, [], self_deliver)
        return [self.wait(shard_id) for shard_id in shard_ids]


class InProcessTransport(ShardTransport):
    """All shards as in-process objects (the serial / test path)."""

    name = "local"

    def __init__(self, topology: FleetTopology, plans: Sequence[ShardPlan]):
        self.workers = [ShardWorker(topology, plan) for plan in plans]
        self._results: dict[int, tuple] = {}

    def post(self, shard_id, until_us, inbound, self_deliver=False):
        self._results[shard_id] = self.workers[shard_id].advance(
            until_us, list(inbound) if inbound else None, self_deliver)

    def wait(self, shard_id):
        return self._results.pop(shard_id)

    def collect_all(self):
        return [worker.collect() for worker in self.workers]

    def scheduled_events(self):
        return sum(worker.sim.scheduled_events for worker in self.workers)

    def close(self):
        pass


class ExecutorTransport(ShardTransport):
    """The pickle/executor baseline: one persistent single-worker
    ``ProcessPoolExecutor`` per shard, so the worker process keeps the
    shard's simulator resident between grants (plain shared pools give no
    task-to-process affinity)."""

    name = "executor"

    def __init__(self, topology: FleetTopology, plans: Sequence[ShardPlan]):
        self.pools = [ProcessPoolExecutor(max_workers=1) for _ in plans]
        payload = topology.canonical()
        init = [pool.submit(_worker_init, payload, plan.to_payload())
                for pool, plan in zip(self.pools, plans)]
        for future in init:
            future.result()
        self._futures: dict[int, Any] = {}
        self._events = 0

    def post(self, shard_id, until_us, inbound, self_deliver=False):
        self._futures[shard_id] = self.pools[shard_id].submit(
            _worker_advance, until_us, list(inbound), self_deliver)

    def wait(self, shard_id):
        return self._futures.pop(shard_id).result()

    def collect_all(self):
        futures = [pool.submit(_worker_collect) for pool in self.pools]
        payloads = [future.result() for future in futures]
        self._events = sum(payload["scheduled_events"] for payload in payloads)
        return payloads

    def scheduled_events(self):
        return self._events

    def close(self):
        for pool in self.pools:
            pool.shutdown(wait=False)


# ---------------------------------------------------------------------------
# SharedMemoryTransport
# ---------------------------------------------------------------------------

# Control-block word offsets (all 8-byte aligned; one block per shard).
_CTRL_COMMAND_SEQ = 0    # u64: coordinator bumps to post a command
_CTRL_ACK_SEQ = 8        # u64: worker sets == command_seq when done
_CTRL_OPCODE = 16        # u64: _OP_*
_CTRL_UNTIL = 24         # f64: barrier time (valid when _FLAG_UNTIL)
_CTRL_FLAGS = 32         # u64: _FLAG_*
_CTRL_IN_COUNT = 40      # u64: inbound batch size (ring + spill)
_CTRL_IN_SPILL = 48      # u64: inbound messages sent via the pipe
_CTRL_PEEK = 56          # f64: response peek (may be +inf)
_CTRL_RAN = 64           # u64: response executed-epoch count
_CTRL_OUT_COUNT = 72     # u64: response outbound size (ring + spill)
_CTRL_OUT_SPILL = 80     # u64: outbound messages sent via the pipe
_CTRL_STATE = 88         # u64: _STATE_*
_CTRL_SIZE = 96

_OP_ADVANCE = 1
_OP_COLLECT = 2
_OP_STOP = 3

_FLAG_UNTIL = 1          # until_us is set (else drain-to-completion)
_FLAG_SELF_DELIVER = 2

_STATE_STARTING = 0
_STATE_READY = 1
_STATE_ERROR = 2

#: Sleep escalation for spin-then-sleep waiters: first sleep 10us,
#: doubling to a 1ms ceiling.
_SLEEP_FLOOR_S = 1e-5
_SLEEP_CEIL_S = 1e-3


def _u64(buf, offset: int) -> int:
    return struct.unpack_from("<Q", buf, offset)[0]


def _put_u64(buf, offset: int, value: int) -> None:
    struct.pack_into("<Q", buf, offset, value)


def _f64(buf, offset: int) -> float:
    return struct.unpack_from("<d", buf, offset)[0]


def _put_f64(buf, offset: int, value: float) -> None:
    struct.pack_into("<d", buf, offset, value)


def _shm_worker_main(shm_name: str, ring_slots: int, spin_budget: int,
                     topology_json: str, plan_payload: dict,
                     conn) -> None:
    """Entry point of one shared-memory shard worker process."""
    segment = shared_memory.SharedMemory(name=shm_name)
    buf = segment.buf
    inbound = MessageRing(buf, ring_slots, offset=_CTRL_SIZE)
    outbound = MessageRing(buf, ring_slots,
                           offset=_CTRL_SIZE + MessageRing.size_for(ring_slots))
    try:
        try:
            worker = ShardWorker(FleetTopology.from_json(topology_json),
                                 ShardPlan.from_payload(plan_payload))
        except Exception:
            conn.send(("error", traceback.format_exc()))
            _put_u64(buf, _CTRL_STATE, _STATE_ERROR)
            return
        _put_u64(buf, _CTRL_STATE, _STATE_READY)
        last_seq = 0
        while True:
            # Spin-then-sleep on the command word.
            spins = 0
            delay = _SLEEP_FLOOR_S
            while _u64(buf, _CTRL_COMMAND_SEQ) == last_seq:
                spins += 1
                if spins > spin_budget:
                    time.sleep(delay)
                    delay = min(delay * 2, _SLEEP_CEIL_S)
            seq = _u64(buf, _CTRL_COMMAND_SEQ)
            opcode = _u64(buf, _CTRL_OPCODE)
            if opcode == _OP_STOP:
                _put_u64(buf, _CTRL_ACK_SEQ, seq)
                return
            try:
                if opcode == _OP_COLLECT:
                    conn.send(("collect", worker.collect()))
                else:
                    total = _u64(buf, _CTRL_IN_COUNT)
                    spill = _u64(buf, _CTRL_IN_SPILL)
                    batch = inbound.drain(total - spill)
                    if spill:
                        tag, spilled = conn.recv()
                        assert tag == "spill", tag
                        batch.extend(spilled)
                    flags = _u64(buf, _CTRL_FLAGS)
                    until = _f64(buf, _CTRL_UNTIL) if flags & _FLAG_UNTIL \
                        else None
                    out, peek, ran = worker.advance(
                        until, batch, bool(flags & _FLAG_SELF_DELIVER))
                    pushed = outbound.push(out)
                    if pushed < len(out):
                        conn.send(("spill", out[pushed:]))
                    _put_f64(buf, _CTRL_PEEK, peek)
                    _put_u64(buf, _CTRL_RAN, ran)
                    _put_u64(buf, _CTRL_OUT_COUNT, len(out))
                    _put_u64(buf, _CTRL_OUT_SPILL, len(out) - pushed)
            except Exception:
                conn.send(("error", traceback.format_exc()))
                _put_u64(buf, _CTRL_STATE, _STATE_ERROR)
                _put_u64(buf, _CTRL_ACK_SEQ, seq)
                return
            # Publish-after-write: the response words above land before
            # the ack the coordinator polls on.
            _put_u64(buf, _CTRL_ACK_SEQ, seq)
            last_seq = seq
    finally:
        del inbound, outbound, buf
        segment.close()


class _ShmShard:
    """Coordinator-side handle for one shared-memory shard worker."""

    def __init__(self, shard_id: int, ring_slots: int, topology_json: str,
                 plan: ShardPlan, spin_budget: int):
        size = _CTRL_SIZE + 2 * MessageRing.size_for(ring_slots)
        self.segment = shared_memory.SharedMemory(create=True, size=size)
        self.segment.buf[:_CTRL_SIZE] = bytes(_CTRL_SIZE)
        self.shard_id = shard_id
        self.inbound = MessageRing(self.segment.buf, ring_slots,
                                   offset=_CTRL_SIZE)
        self.outbound = MessageRing(
            self.segment.buf, ring_slots,
            offset=_CTRL_SIZE + MessageRing.size_for(ring_slots))
        self.conn, child_conn = Pipe()
        self.process = Process(
            target=_shm_worker_main,
            args=(self.segment.name, ring_slots, spin_budget, topology_json,
                  plan.to_payload(), child_conn),
            daemon=True)
        self.process.start()
        child_conn.close()
        self.seq = 0
        self.spin_budget = spin_budget

    # -- low-level words --------------------------------------------------

    @property
    def buf(self):
        return self.segment.buf

    def fail(self, doing: str) -> RuntimeError:
        """Turn a worker-side failure into a clean coordinator error."""
        state = _u64(self.buf, _CTRL_STATE)
        detail = ""
        if state == _STATE_ERROR:
            try:
                while True:
                    tag, payload = self.conn.recv()
                    if tag == "error":
                        detail = f":\n{payload}"
                        break
            except (EOFError, OSError):
                pass
            return RuntimeError(
                f"shard {self.shard_id} worker failed while "
                f"{doing}{detail}")
        return RuntimeError(
            f"shard {self.shard_id} worker process died while {doing} "
            "(exitcode "
            f"{self.process.exitcode}); partial batches are never "
            "published, so no torn data was consumed")

    def wait_word(self, offset: int, value: int, doing: str) -> None:
        """Spin-then-sleep until ``buf[offset] == value``; raise cleanly
        if the worker errored or died instead of answering."""
        spins = 0
        delay = _SLEEP_FLOOR_S
        while _u64(self.buf, offset) != value:
            if _u64(self.buf, _CTRL_STATE) == _STATE_ERROR:
                raise self.fail(doing)
            spins += 1
            if spins > self.spin_budget:
                if not self.process.is_alive():
                    raise self.fail(doing)
                time.sleep(delay)
                delay = min(delay * 2, _SLEEP_CEIL_S)

    def recv(self, expected_tag: str):
        tag, payload = self.conn.recv()
        if tag == "error":
            raise RuntimeError(
                f"shard {self.shard_id} worker failed:\n{payload}")
        assert tag == expected_tag, (tag, expected_tag)
        return payload

    def release(self) -> None:
        """Drop ring views and the segment mapping (idempotent)."""
        self.inbound = self.outbound = None
        try:
            self.conn.close()
        except OSError:
            pass
        try:
            self.segment.close()
            self.segment.unlink()
        except FileNotFoundError:
            pass


class SharedMemoryTransport(ShardTransport):
    """Shared-memory ring transport: one segment per shard holding the
    barrier/control words plus an inbound and an outbound message ring;
    a duplex pipe per shard carries init errors, metric payloads, and
    ring-overflow spills.  See the module docstring for the safety
    discipline."""

    name = "shm"

    def __init__(self, topology: FleetTopology, plans: Sequence[ShardPlan],
                 spin_budget: int = DEFAULT_SPIN_BUDGET,
                 ring_slots: int = DEFAULT_RING_SLOTS):
        topology_json = topology.canonical()
        self._shards: list[_ShmShard] = []
        self._events = 0
        try:
            for plan in plans:
                self._shards.append(_ShmShard(
                    plan.shard_id, ring_slots, topology_json, plan,
                    spin_budget))
            for shard in self._shards:
                shard.wait_word(_CTRL_STATE, _STATE_READY, "initialising")
        except BaseException:
            self.close()
            raise

    def post(self, shard_id, until_us, inbound, self_deliver=False):
        shard = self._shards[shard_id]
        inbound = list(inbound)
        flags = _FLAG_SELF_DELIVER if self_deliver else 0
        if until_us is not None:
            flags |= _FLAG_UNTIL
            _put_f64(shard.buf, _CTRL_UNTIL, until_us)
        _put_u64(shard.buf, _CTRL_FLAGS, flags)
        _put_u64(shard.buf, _CTRL_OPCODE, _OP_ADVANCE)
        pushed = shard.inbound.push(inbound)
        _put_u64(shard.buf, _CTRL_IN_COUNT, len(inbound))
        _put_u64(shard.buf, _CTRL_IN_SPILL, len(inbound) - pushed)
        if pushed < len(inbound):
            shard.conn.send(("spill", inbound[pushed:]))
        shard.seq += 1
        # Publish-after-write: every command word above is in place
        # before the sequence bump the worker polls on.
        _put_u64(shard.buf, _CTRL_COMMAND_SEQ, shard.seq)

    def wait(self, shard_id):
        shard = self._shards[shard_id]
        shard.wait_word(_CTRL_ACK_SEQ, shard.seq, "advancing")
        peek = _f64(shard.buf, _CTRL_PEEK)
        ran = _u64(shard.buf, _CTRL_RAN)
        total = _u64(shard.buf, _CTRL_OUT_COUNT)
        spill = _u64(shard.buf, _CTRL_OUT_SPILL)
        outbound = shard.outbound.drain(total - spill)
        if spill:
            outbound.extend(shard.recv("spill"))
        return outbound, peek, ran

    def collect_all(self):
        for shard in self._shards:
            _put_u64(shard.buf, _CTRL_OPCODE, _OP_COLLECT)
            shard.seq += 1
            _put_u64(shard.buf, _CTRL_COMMAND_SEQ, shard.seq)
        payloads = []
        for shard in self._shards:
            payload = shard.recv("collect")
            shard.wait_word(_CTRL_ACK_SEQ, shard.seq, "collecting")
            payloads.append(payload)
        self._events = sum(payload["scheduled_events"] for payload in payloads)
        return payloads

    def scheduled_events(self):
        return self._events

    def close(self):
        for shard in self._shards:
            try:
                if shard.process.is_alive():
                    _put_u64(shard.buf, _CTRL_OPCODE, _OP_STOP)
                    shard.seq += 1
                    _put_u64(shard.buf, _CTRL_COMMAND_SEQ, shard.seq)
            except (ValueError, OSError):
                pass  # segment already gone
            shard.process.join(timeout=2.0)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=2.0)
            shard.release()
        self._shards = []


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------

def create_transport(kind: str, topology: FleetTopology,
                     plans: Sequence[ShardPlan],
                     spin_budget: int = DEFAULT_SPIN_BUDGET,
                     ring_slots: int = DEFAULT_RING_SLOTS) -> ShardTransport:
    """Build a concrete transport; ``kind`` must already be resolved
    (``local`` / ``executor`` / ``shm`` -- see
    :meth:`FleetRunConfig.resolve_transport`)."""
    if kind == "local":
        return InProcessTransport(topology, plans)
    if kind == "executor":
        return ExecutorTransport(topology, plans)
    if kind == "shm":
        return SharedMemoryTransport(topology, plans,
                                     spin_budget=spin_budget,
                                     ring_slots=ring_slots)
    raise ValueError(f"unknown transport {kind!r} "
                     f"(choose from local, executor, shm)")


def coupling_components(topology: FleetTopology,
                        owner: dict[int, int],
                        shards: int) -> list[list[int]]:
    """Partition shard ids into coupling components: shards joined by a
    cross-shard replication edge (or a fault group/spare pair) may
    exchange messages and must lockstep together; a singleton component
    can never see cross-shard traffic and keeps its batched ``run_ahead``
    windows.  Union-find over shard ids, deterministic order."""
    parent = list(range(shards))

    def find(sid: int) -> int:
        while parent[sid] != sid:
            parent[sid] = parent[parent[sid]]
            sid = parent[sid]
        return sid

    def union(members: set[int]) -> None:
        roots = sorted(find(sid) for sid in members)
        for root in roots[1:]:
            parent[root] = roots[0]

    for edge in topology.edges:
        touched = {owner[index]
                   for index in topology.group_indices(edge.source)}
        touched.update(owner[index]
                       for index in topology.group_indices(edge.target))
        union(touched)
    for fault in topology.faults:
        touched = {owner[index]
                   for index in topology.group_indices(fault.group)}
        if fault.spare is not None:
            touched.update(owner[index]
                           for index in topology.group_indices(fault.spare))
        union(touched)

    components: dict[int, list[int]] = {}
    for sid in range(shards):
        components.setdefault(find(sid), []).append(sid)
    return [components[root] for root in sorted(components)]
