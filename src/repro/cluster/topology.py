"""Declarative fleet topology: device groups, tenants, replication edges.

A :class:`FleetTopology` describes a cluster-scale simulation the way a
:class:`~repro.experiments.sweep.CellSpec` describes a single-device cell:

* **Device groups** -- ``count`` instances of one registered device family
  (``"SSD"``, ``"ESSD-2"``, ...) sharing a capacity and optional
  profile overrides (``device_params``).
* **Tenants** -- a workload bound to every device of one group.  The
  workload is either a closed-loop FIO job (plain
  :class:`~repro.workload.fio.FioJob` fields) or an open-loop trace replay
  (``{"trace": "<family>", ...}`` with knobs forwarded to
  :func:`repro.workload.trace.synthesize_trace`).  Each (tenant, device)
  pair derives its own deterministic seed, so results never depend on how
  the fleet is later partitioned into shards.
* **Replication edges** -- asynchronous cross-group mirroring reusing
  :class:`repro.ebs.replication.ReplicationPolicy` semantics: every tenant
  write completed on a device of ``source`` fans out to
  ``replication_factor`` devices of ``target``.  Deliveries are quantized
  to the topology's ``epoch_us`` boundary, which is exactly the
  conservative synchronization window the shard runner uses -- so replica
  timing (and therefore every metric) is independent of the shard layout.

The whole description round-trips through a JSON payload
(:meth:`FleetTopology.to_payload` / :meth:`FleetTopology.from_payload`);
its canonical form is what a ``CellSpec.fleet`` field stores and what the
sweep cache hashes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional, Sequence

from repro.cluster.faults import FaultEvent, FaultPolicy
from repro.determinism import canonical_json
from repro.ebs.replication import ReplicationPolicy
from repro.host.io import MiB

#: Default per-device capacities at fleet scale (kept small: a fleet cell
#: instantiates dozens of devices, so each one stays cheap to build).
DEFAULT_FLEET_SSD_CAPACITY = 32 * MiB
DEFAULT_FLEET_ESSD_CAPACITY = 64 * MiB

#: Default conservative synchronization window (us).  Replica deliveries are
#: quantized to this boundary; the shard runner advances in epochs of the
#: same width, so no cross-shard message ever has to travel into the past.
DEFAULT_EPOCH_US = 1000.0


def _pairs(mapping: Optional[Mapping[str, Any]]) -> tuple:
    """Normalise a mapping to the sorted-pairs form frozen dataclasses use."""
    return tuple(sorted((mapping or {}).items()))


#: Device-group simulation modes: ``"discrete"`` instantiates one real
#: :class:`repro.devices.Device` per count; ``"macro"`` replaces the whole
#: group with one calibrated mean-field aggregate
#: (:class:`repro.cluster.macro.MacroGroup`) whose cost is independent of
#: ``count`` -- metrics from macro groups are flagged ``approximate``.
GROUP_MODES = ("discrete", "macro")


@dataclass(frozen=True)
class DeviceGroup:
    """``count`` devices of one registered family under a shared config."""

    name: str
    device: str
    count: int
    capacity_bytes: Optional[int] = None
    #: Extra kwargs for :func:`repro.devices.create_device` (profile
    #: overrides such as ``replication_factor`` or ``chunk_size``), as
    #: sorted pairs.
    device_params: tuple = ()
    preload: bool = True
    #: ``"discrete"`` (default) or ``"macro"`` -- see :data:`GROUP_MODES`.
    mode: str = "discrete"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"group {self.name!r} needs count >= 1")
        if self.mode not in GROUP_MODES:
            raise ValueError(f"group {self.name!r} has unknown mode "
                             f"{self.mode!r} (expected one of {GROUP_MODES})")

    def to_payload(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "device": self.device,
            "count": self.count,
            "capacity_bytes": self.capacity_bytes,
            "device_params": [list(pair) for pair in self.device_params],
            "preload": self.preload,
            "mode": self.mode,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "DeviceGroup":
        data = dict(payload)
        data["device_params"] = tuple(
            tuple(pair) for pair in data.get("device_params", ()))
        data.setdefault("mode", "discrete")
        return cls(**data)


@dataclass(frozen=True)
class Tenant:
    """One workload bound to every device of ``group``.

    ``workload`` is a sorted tuple of (field, value) pairs.  Without a
    ``trace`` key the fields describe a closed-loop
    :class:`~repro.workload.fio.FioJob` (``pattern``, ``io_size``,
    ``queue_depth``, ``io_count``, ...).  With ``trace`` set to a family
    name the remaining fields are synthesis knobs forwarded to
    :func:`repro.workload.trace.synthesize_trace` and the replay is
    open-loop.
    """

    name: str
    group: str
    workload: tuple

    def workload_dict(self) -> dict[str, Any]:
        return dict(self.workload)

    @property
    def is_trace(self) -> bool:
        return "trace" in dict(self.workload)

    def to_payload(self) -> dict[str, Any]:
        return {"name": self.name, "group": self.group,
                "workload": self.workload_dict()}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Tenant":
        return cls(name=payload["name"], group=payload["group"],
                   workload=_pairs(payload.get("workload")))


@dataclass(frozen=True)
class ReplicationEdge:
    """Asynchronous mirroring of ``source`` tenant writes onto ``target``.

    Each completed write on source device ``i`` produces
    ``replication_factor`` replica writes on target devices ``(i + r) %
    target.count``.  The factor is validated through the same
    :class:`~repro.ebs.replication.ReplicationPolicy` the intra-volume EBS
    path uses; cross-group mirroring is asynchronous, so the policy's write
    quorum never gates the primary acknowledgement (quorum 1).
    """

    source: str
    target: str
    replication_factor: int = 1

    def policy(self) -> ReplicationPolicy:
        return ReplicationPolicy(replication_factor=self.replication_factor,
                                 write_quorum=1)

    def __post_init__(self) -> None:
        self.policy()  # validates the factor
        if self.source == self.target:
            raise ValueError(f"edge {self.source!r} -> {self.target!r} "
                             "may not target its own group")

    def to_payload(self) -> dict[str, Any]:
        return {"source": self.source, "target": self.target,
                "replication_factor": self.replication_factor}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ReplicationEdge":
        return cls(**dict(payload))


@dataclass(frozen=True)
class FleetTopology:
    """A named fleet: device groups x tenants x replication edges."""

    name: str
    groups: tuple[DeviceGroup, ...]
    tenants: tuple[Tenant, ...] = ()
    edges: tuple[ReplicationEdge, ...] = ()
    #: Declarative fault schedule: device/node failures, drains, repairs.
    #: Fault state flips are quantized to ``epoch_us`` barriers (see
    #: :mod:`repro.cluster.faults`), so faulted runs stay bit-identical
    #: across shard layouts exactly like replica deliveries do.
    faults: tuple[FaultEvent, ...] = ()
    #: Rebuild pacing + overload-shedding knobs for the fault schedule.
    fault_policy: FaultPolicy = FaultPolicy()
    #: Conservative synchronization window; also the replica-delivery
    #: quantum (see module docstring).
    epoch_us: float = DEFAULT_EPOCH_US
    seed: int = 17

    def __post_init__(self) -> None:
        names = [group.name for group in self.groups]
        if not names:
            raise ValueError("a fleet needs at least one device group")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate group names in {names}")
        known = set(names)
        for tenant in self.tenants:
            if tenant.group not in known:
                raise ValueError(f"tenant {tenant.name!r} targets unknown "
                                 f"group {tenant.group!r}")
        tenant_names = [tenant.name for tenant in self.tenants]
        if len(set(tenant_names)) != len(tenant_names):
            raise ValueError(f"duplicate tenant names in {tenant_names}")
        by_name = {group.name: group for group in self.groups}
        for edge in self.edges:
            for end in (edge.source, edge.target):
                if end not in known:
                    raise ValueError(f"edge references unknown group {end!r}")
            if edge.replication_factor > by_name[edge.target].count:
                raise ValueError(
                    f"edge {edge.source!r} -> {edge.target!r} replicates "
                    f"{edge.replication_factor}-way onto a group of only "
                    f"{by_name[edge.target].count} devices")
        if self.epoch_us <= 0:
            raise ValueError("epoch_us must be positive")
        for fault in self.faults:
            if fault.group not in known:
                raise ValueError(f"fault targets unknown group {fault.group!r}")
            if fault.device is not None and \
                    fault.device >= by_name[fault.group].count:
                raise ValueError(
                    f"fault device index {fault.device} out of range for "
                    f"group {fault.group!r} of {by_name[fault.group].count}")
            if fault.spare is not None:
                if fault.spare not in known:
                    raise ValueError(
                        f"fault names unknown spare group {fault.spare!r}")
                if fault.spare == fault.group:
                    raise ValueError(
                        f"fault spare group {fault.spare!r} may not be the "
                        "failed group itself")

    # -- enumeration -------------------------------------------------------
    @property
    def total_devices(self) -> int:
        return sum(group.count for group in self.groups)

    def group(self, name: str) -> DeviceGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(name)

    def device_table(self) -> list[tuple[str, int]]:
        """Global device enumeration: ``[(group_name, local_index), ...]``.

        The position in this list is the device's **global index** -- the
        identity every layer (sharding, replication routing, metric merges)
        keys on.  It depends only on the declaration order of the groups,
        never on the shard layout.
        """
        table = []
        for group in self.groups:
            for local_index in range(group.count):
                table.append((group.name, local_index))
        return table

    def group_indices(self, name: str) -> list[int]:
        """Global indices of every device in group ``name`` (local order)."""
        table = self.device_table()
        return [index for index, (group_name, _) in enumerate(table)
                if group_name == name]

    def edges_from(self, group_name: str) -> list[ReplicationEdge]:
        return [edge for edge in self.edges if edge.source == group_name]

    def macro_groups(self) -> list[DeviceGroup]:
        """The groups simulated as mean-field aggregates (may be empty)."""
        return [group for group in self.groups if group.mode == "macro"]

    @property
    def has_macro(self) -> bool:
        return any(group.mode == "macro" for group in self.groups)

    def with_modes(self, modes: Mapping[str, str]) -> "FleetTopology":
        """Copy with per-group simulation modes overridden.

        This is the ``fleet --macro`` override: any topology can be
        re-run with chosen groups approximated (``"macro"``) or forced
        back to the discrete path (``"discrete"``).
        """
        known = {group.name for group in self.groups}
        for name, mode in modes.items():
            if name not in known:
                raise ValueError(f"mode override names unknown group {name!r}")
            if mode not in GROUP_MODES:
                raise ValueError(f"unknown group mode {mode!r} for "
                                 f"{name!r} (expected one of {GROUP_MODES})")
        groups = tuple(replace(group, mode=modes.get(group.name, group.mode))
                       for group in self.groups)
        return replace(self, groups=groups)

    def with_macro(self, *group_names: str) -> "FleetTopology":
        """Copy with the named groups switched to ``mode="macro"``."""
        return self.with_modes({name: "macro" for name in group_names})

    # -- serialization -----------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "groups": [group.to_payload() for group in self.groups],
            "tenants": [tenant.to_payload() for tenant in self.tenants],
            "edges": [edge.to_payload() for edge in self.edges],
            "faults": [fault.to_payload() for fault in self.faults],
            "fault_policy": self.fault_policy.to_payload(),
            "epoch_us": self.epoch_us,
            "seed": self.seed,
        }

    def canonical(self) -> str:
        """Canonical JSON form (what ``CellSpec.fleet`` stores and hashes)."""
        return canonical_json(self.to_payload())

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FleetTopology":
        return cls(
            name=payload["name"],
            groups=tuple(DeviceGroup.from_payload(entry)
                         for entry in payload["groups"]),
            tenants=tuple(Tenant.from_payload(entry)
                          for entry in payload.get("tenants", ())),
            edges=tuple(ReplicationEdge.from_payload(entry)
                        for entry in payload.get("edges", ())),
            faults=tuple(FaultEvent.from_payload(entry)
                         for entry in payload.get("faults", ())),
            fault_policy=FaultPolicy.from_payload(payload.get("fault_policy")),
            epoch_us=payload.get("epoch_us", DEFAULT_EPOCH_US),
            seed=payload.get("seed", 17),
        )

    @classmethod
    def from_json(cls, text: str) -> "FleetTopology":
        return cls.from_payload(json.loads(text))

    def to_document(self, kind: Optional[str] = "fleet") -> dict[str, Any]:
        """The human-editable YAML/JSON document form (defaults omitted).

        Unlike :meth:`to_payload` -- the exhaustive canonical wire form --
        a document is meant to be written by hand: mappings instead of
        sorted pairs, defaults left out.  ``topology -> document ->
        topology`` is lossless; see :mod:`repro.config`.
        """
        from repro.config import topology_to_document

        return topology_to_document(self, kind=kind)

    @classmethod
    def from_document(cls, document: Mapping[str, Any],
                      path: str = "fleet") -> "FleetTopology":
        """Build from a document, validating with path-addressed errors."""
        from repro.config import topology_from_document

        return topology_from_document(document, path=path)

    def scaled(self, **changes) -> "FleetTopology":
        """Copy with some top-level fields changed (e.g. ``epoch_us``)."""
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# Convenience builders (plain dicts in, normalised tuples out)
# ---------------------------------------------------------------------------

def group(name: str, device: str, count: int,
          capacity_bytes: Optional[int] = None,
          device_params: Optional[Mapping[str, Any]] = None,
          preload: bool = True, mode: str = "discrete") -> DeviceGroup:
    return DeviceGroup(name=name, device=device, count=count,
                       capacity_bytes=capacity_bytes,
                       device_params=_pairs(device_params), preload=preload,
                       mode=mode)


def tenant(name: str, group_name: str, **workload) -> Tenant:
    return Tenant(name=name, group=group_name, workload=_pairs(workload))


def edge(source: str, target: str, replication_factor: int = 1) -> ReplicationEdge:
    return ReplicationEdge(source=source, target=target,
                           replication_factor=replication_factor)


def fault(kind: str, group_name: str, at_us: float,
          device: Optional[int] = None,
          repair_after_us: Optional[float] = None,
          spare: Optional[str] = None) -> FaultEvent:
    return FaultEvent(kind=kind, group=group_name, at_us=at_us,
                      device=device, repair_after_us=repair_after_us,
                      spare=spare)


def fleet(name: str, groups: Sequence[DeviceGroup],
          tenants: Sequence[Tenant] = (),
          edges: Sequence[ReplicationEdge] = (),
          faults: Sequence[FaultEvent] = (),
          fault_policy: Optional[FaultPolicy] = None,
          epoch_us: float = DEFAULT_EPOCH_US, seed: int = 17) -> FleetTopology:
    return FleetTopology(name=name, groups=tuple(groups),
                         tenants=tuple(tenants), edges=tuple(edges),
                         faults=tuple(faults),
                         fault_policy=fault_policy or FaultPolicy(),
                         epoch_us=epoch_us, seed=seed)
